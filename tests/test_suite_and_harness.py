"""Tests of the benchmark suite registry, the harness, and a full-suite
integration sweep (every program under every strategy)."""

import pytest

from repro import ALL_STRATEGIES, analyze
from repro.bench.harness import (
    analyze_suite_program,
    figure6,
    loc_of,
    load_program,
)
from repro.clients import deref_stats
from repro.suite.registry import SUITE, by_name, casting_programs, nocast_programs, program_dir


class TestRegistry:
    def test_twenty_programs(self):
        assert len(SUITE) == 20

    def test_partition_8_12(self):
        assert len(nocast_programs()) == 8
        assert len(casting_programs()) == 12

    def test_unique_names(self):
        names = [p.name for p in SUITE]
        assert len(names) == len(set(names))

    def test_all_sources_exist(self):
        d = program_dir()
        for p in SUITE:
            assert (d / p.filename).is_file(), p.filename

    def test_by_name(self):
        assert by_name("bc").casting
        assert not by_name("anagram").casting
        with pytest.raises(KeyError):
            by_name("nope")

    def test_families_documented(self):
        for p in SUITE:
            assert p.family in ("GNU", "SPEC", "Landi", "Austin")
            assert p.description


class TestFullSuiteIntegration:
    """Every suite program must analyze cleanly under every strategy."""

    @pytest.mark.parametrize("bp", SUITE, ids=lambda b: b.name)
    def test_all_strategies_run(self, bp):
        program = load_program(bp)
        sizes = {}
        for cls in ALL_STRATEGIES:
            result = analyze(program, cls())
            assert result.facts.edge_count() > 0, cls.key
            ds = deref_stats(result)
            assert ds.count > 0, f"{bp.name} has no deref sites"
            sizes[cls.key] = ds.average
        # Qualitative ordering: the collapsed analysis is never *more*
        # precise than CIS at the Figure-4 metric.
        assert sizes["collapse_always"] >= sizes["common_initial_sequence"] - 1e-9

    @pytest.mark.parametrize("bp", nocast_programs(), ids=lambda b: b.name)
    def test_nocast_programs_have_low_mismatch(self, bp):
        result = analyze_suite_program(bp, "collapse_on_cast")
        s = result.stats
        struct = s.lookup_struct_calls + s.resolve_struct_calls
        mism = s.lookup_mismatch_calls + s.resolve_mismatch_calls
        rate = mism / struct if struct else 0.0
        assert rate < 0.10, f"{bp.name}: mismatch rate {rate:.2%}"

    @pytest.mark.parametrize("bp", casting_programs(), ids=lambda b: b.name)
    def test_casting_programs_have_mismatches(self, bp):
        result = analyze_suite_program(bp, "collapse_on_cast")
        s = result.stats
        assert s.lookup_mismatch_calls + s.resolve_mismatch_calls > 0, bp.name


class TestHarness:
    def test_loc_of(self):
        assert loc_of("a\n\n  \nb\n") == 2

    def test_figure6_rows(self):
        rows = figure6()
        assert len(rows) == 12
        for r in rows:
            assert set(r.values) == {
                "collapse_always", "collapse_on_cast",
                "common_initial_sequence", "offsets",
            }
            norm = r.normalized()
            assert norm["offsets"] == pytest.approx(1.0)

    def test_analyze_suite_program_accepts_cached_program(self):
        bp = by_name("ul")
        program = load_program(bp)
        r1 = analyze_suite_program(bp, "offsets", program)
        r2 = analyze_suite_program(bp, "offsets", program)
        assert r1.facts.edge_count() == r2.facts.edge_count()


class TestAdversarialGenerator:
    def test_deterministic(self):
        from repro.suite import ADVERSARIAL, generate_program

        assert generate_program(3, ADVERSARIAL) == generate_program(3, ADVERSARIAL)
        assert generate_program(3, ADVERSARIAL) != generate_program(4, ADVERSARIAL)

    def test_emits_adversarial_constructs(self):
        from repro.suite import ADVERSARIAL, generate_program

        # Across a handful of seeds, every construct family shows up.
        blob = "".join(generate_program(s, ADVERSARIAL) for s in range(10))
        assert "union U0" in blob
        assert "struct Rec" in blob
        assert "int adv_sum(int n, ...)" in blob
        assert "(*fp0)" in blob or "fp0(" in blob
        assert "void *vp0;" in blob

    def test_default_config_unchanged_by_adversarial_state(self):
        from repro.suite import GenConfig, generate_program

        src = generate_program(11, GenConfig())
        assert "union" not in src
        assert "adv_sum" not in src
        assert "struct Rec" not in src

    def test_adversarial_parses(self):
        from repro.frontend import parse_c
        from repro.suite import ADVERSARIAL, generate_program

        for seed in range(5):
            parse_c(generate_program(seed, ADVERSARIAL))
