"""Multi-TU linking: symbol resolution, diagnostics, and entry points.

Covers the linker's C-linkage semantics — extern↔definition binding,
tentative-definition folding, ``static``-scope renaming, duplicate- and
conflicting-definition diagnostics — plus every user-facing surface
that grew multi-file support: ``AnalysisSession.from_files`` /
``from_sources``, ``program_from_file`` with a list, the CLI's N-file
positional and ``link`` subcommand, and the service's ``files`` field.
"""

from __future__ import annotations

import pytest

from repro import AnalysisSession, CommonInitialSequence
from repro.diag import DiagnosticSink, Severity
from repro.frontend import program_from_c, program_from_file, program_from_files
from repro.link import (
    LinkError,
    concat_sources,
    link_sources,
    parse_translation_unit,
    split_translation_units,
)


def _facts(session):
    """Solved facts as strings, compiler temporaries filtered out."""
    result = session.solve(CommonInitialSequence())
    return sorted(
        repr(pair) for pair in result.facts.all_facts()
        if "%t" not in repr(pair[0])
    )


# ----------------------------------------------------------------------
# Symbol scanning.
# ----------------------------------------------------------------------
def test_symbol_scan_classifies_linkage():
    tu = parse_translation_unit(
        """
        static int s;
        int tent;
        int strong = 1;
        extern int ext;
        int f(void) { return 0; }
        int g(int);
        """,
        name="a.c",
    )
    syms = tu.symbols
    assert syms["s"].static and syms["s"].tentative
    assert syms["tent"].tentative and not syms["tent"].defined
    assert syms["strong"].defined
    assert syms["ext"].extern and not syms["ext"].defined
    assert syms["f"].kind == "function" and syms["f"].defined
    assert syms["g"].kind == "function" and syms["g"].extern


# ----------------------------------------------------------------------
# Extern resolution and tentative folding.
# ----------------------------------------------------------------------
def test_extern_resolves_to_definition_across_tus():
    session = AnalysisSession.from_sources([
        ("def.c", "int x; int *p;"),
        ("use.c", "extern int x; extern int *p;"
                  "void main(void) { p = &x; }"),
    ])
    assert _facts(session) == ["(p, x)"]
    info = session.program.link_info
    assert info.tus_linked == 2
    assert info.externs_resolved == 2


def test_tentative_definitions_fold_to_one_object():
    session = AnalysisSession.from_sources([
        ("a.c", "int x; int *p; void f(void) { p = &x; }"),
        ("b.c", "int x; int *q; void g(void) { q = &x; }"),
    ])
    facts = _facts(session)
    # Both TUs' tentative `int x;` are the same object.
    assert facts == ["(p, x)", "(q, x)"]
    assert session.program.link_info.tentative_folded == 1


def test_link_counters_flow_into_engine_stats():
    session = AnalysisSession.from_sources([
        ("def.c", "int x;"),
        ("use.c", "extern int x; int *p; void main(void) { p = &x; }"),
    ])
    stats = session.solve(CommonInitialSequence()).stats
    assert stats.tus_linked == 2
    assert stats.externs_resolved == 1
    d = stats.as_dict()
    assert d["tus_linked"] == 2 and d["externs_resolved"] == 1


# ----------------------------------------------------------------------
# static-scope renaming.
# ----------------------------------------------------------------------
def test_static_collisions_get_distinct_objects():
    session = AnalysisSession.from_sources([
        ("a.c", "static int hidden; int *pa;"
                "void fa(void) { pa = &hidden; }"),
        ("b.c", "static int hidden; int *pb;"
                "void fb(void) { pb = &hidden; }"),
    ])
    facts = _facts(session)
    # Each TU's `hidden` is its own object — pa and pb must NOT alias.
    assert len(facts) == 2
    targets = {f for f in facts}
    assert len({t.split(", ")[1] for t in targets}) == 2
    info = session.program.link_info
    assert info.static_renames == 2
    assert sorted(info.renames["hidden"]) == ["a.c", "b.c"]


def test_static_rename_is_scope_aware():
    # The local `hidden` inside fb shadows the file-scope static; the
    # rename must not touch it.
    session = AnalysisSession.from_sources([
        ("a.c", "static int hidden; int *pa;"
                "void fa(void) { pa = &hidden; }"),
        ("b.c", "static int hidden; int *pb;"
                "void fb(void) { int hidden; pb = &hidden; }"),
    ])
    pb_target = [f for f in _facts(session) if f.startswith("(pb")][0]
    assert "fb::hidden" in pb_target


def test_static_function_collision_renamed():
    session = AnalysisSession.from_sources([
        ("a.c", "static int helper(void) { return 1; }"
                "int fa(void) { return helper(); }"),
        ("b.c", "static int helper(void) { return 2; }"
                "int fb(void) { return helper(); }"),
    ])
    names = set(session.program.functions)
    assert "helper__tu0" in names and "helper__tu1" in names


def test_no_collision_no_rename():
    session = AnalysisSession.from_sources([
        ("a.c", "static int only_here; int *p;"
                "void f(void) { p = &only_here; }"),
        ("b.c", "int unrelated;"),
    ])
    assert session.program.link_info.static_renames == 0
    assert _facts(session) == ["(p, only_here)"]


# ----------------------------------------------------------------------
# Duplicate and conflicting definitions.
# ----------------------------------------------------------------------
def test_duplicate_function_definition_strict_raises():
    with pytest.raises(LinkError) as exc:
        link_sources([
            ("a.c", "int f(void) { return 1; }"),
            ("b.c", "int f(void) { return 2; }"),
        ])
    assert exc.value.diagnostic.kind == "duplicate-definition"
    assert "f" in exc.value.diagnostic.message


def test_duplicate_function_definition_lenient_keeps_first():
    sink = DiagnosticSink()
    program = link_sources([
        ("a.c", "int x1, *f_target; int *f(void) { return &x1; }"),
        ("b.c", "int x2; int *f(void) { return &x2; }"
                "extern int *f_target;"
                "void main(void) { f_target = f(); }"),
    ], strict=False, diagnostics=sink)
    assert "duplicate-definition" in sink.kinds()
    session = AnalysisSession(program)
    # First definition won: f returns &x1, never &x2.
    assert _facts(session) == ["(f::$ret, x1)", "(f_target, x1)"]


def test_mismatched_extern_types_warn_never_raise():
    for strict in (True, False):
        sink = DiagnosticSink()
        link_sources([
            ("a.c", "int g;"),
            ("b.c", "extern float g; void f(void) { }"),
        ], strict=strict, diagnostics=sink)
        kinds = sink.kinds()
        assert "conflicting-declaration" in kinds
        warn = [d for d in sink if d.kind == "conflicting-declaration"]
        assert all(d.severity is Severity.WARNING for d in warn)


def test_parameter_names_do_not_conflict():
    sink = DiagnosticSink()
    link_sources([
        ("a.c", "int *alias(int *x) { return x; }"),
        ("b.c", "int *alias(int *);"
                "void main(void) { }"),
    ], diagnostics=sink)
    assert "conflicting-declaration" not in sink.kinds()


def test_empty_link_rejected():
    with pytest.raises(LinkError):
        link_sources([])


def test_unparsable_tu_lenient_degrades():
    sink = DiagnosticSink()
    program = link_sources([
        ("good.c", "int x, *p; void main(void) { p = &x; }"),
        ("bad.c", "this is not C at all ((("),
    ], strict=False, diagnostics=sink)
    assert sink.has_fatal  # bad.c recorded, good.c still analyzed
    assert _facts(AnalysisSession(program)) == ["(p, x)"]


# ----------------------------------------------------------------------
# Entry points: frontend helpers, session classmethods, CLI, service.
# ----------------------------------------------------------------------
def test_program_from_file_accepts_path_list(tmp_path):
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text("int x;")
    b.write_text("extern int x; int *p; void main(void) { p = &x; }")
    program = program_from_file([a, b])
    assert program.link_info is not None
    assert program.link_info.tus_linked == 2
    # Single path (or singleton list) keeps single-TU behavior.
    assert program_from_file(a).link_info is None
    assert program_from_files([a]).link_info is None


def test_from_files_single_path_matches_from_file(tmp_path):
    f = tmp_path / "p.c"
    f.write_text("int x, *p; void main(void) { p = &x; }")
    one = AnalysisSession.from_file(f)
    many = AnalysisSession.from_files([f])
    assert _facts(one) == _facts(many)
    assert many.program.link_info is None


def test_session_from_file_accepts_list(tmp_path):
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text("int x;")
    b.write_text("extern int x; int *p; void main(void) { p = &x; }")
    session = AnalysisSession.from_file([a, b])
    assert _facts(session) == ["(p, x)"]


def test_cli_accepts_multiple_files(tmp_path, capsys):
    from repro.__main__ import main

    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text("int x;")
    b.write_text("extern int x; int *p; void main(void) { p = &x; }")
    assert main([str(a), str(b), "-q", "p"]) == 0
    out = capsys.readouterr().out
    assert "2 TUs linked" in out
    assert "p -> ['x']" in out


def test_cli_duplicate_definition_one_line_error(tmp_path):
    from repro.__main__ import main

    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text("int f(void) { return 1; }")
    b.write_text("int f(void) { return 2; }")
    with pytest.raises(SystemExit) as exc:
        main([str(a), str(b)])
    msg = str(exc.value)
    assert "duplicate" in msg or "redefinition" in msg
    assert "Traceback" not in msg


def test_cli_link_subcommand(tmp_path, capsys):
    from repro.__main__ import main

    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text("static int s; int x; void f(void) { }")
    b.write_text("static int s; extern int x; void g(void) { }")
    assert main(["link", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "2 TUs linked" in out
    assert "statics renamed: 2" in out


def test_service_accepts_files_field():
    from repro.service import ServiceApp, ServiceConfig, ServiceError

    app = ServiceApp(ServiceConfig())
    status, doc = app._create_session(
        {}, {},
        {"files": [
            {"name": "a.c", "source": "int x;"},
            {"name": "b.c",
             "source": "extern int x; int *p; void main(void) { p = &x; }"},
        ]},
    )
    assert status == 201
    assert doc["session"]["link"]["tus_linked"] == 2

    with pytest.raises(ServiceError) as exc:
        app._create_session({}, {}, {"source": "int x;", "files": []})
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:
        app._create_session({}, {}, {"files": []})
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:
        app._create_session({}, {}, {"files": [{"name": "a.c"}]})
    assert exc.value.status == 400


def test_splitter_roundtrip_equivalence():
    source = """
    struct node { struct node *next; int v; };
    struct node pool[4];
    struct node *head;
    void push(struct node *n) { n->next = head; head = n; }
    void init(void) { push(&pool[0]); push(&pool[1]); }
    int main(void) { init(); return 0; }
    """
    tus = split_translation_units(source, name="list.c", parts=3)
    assert len(tus) == 3
    linked = AnalysisSession(link_sources(tus, name="list.c"))
    concat = AnalysisSession(program_from_c(concat_sources(tus), "list.c"))
    assert _facts(linked) == _facts(concat)
