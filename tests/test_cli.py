"""Tests for the command-line interface (``python -m repro``)."""


import pytest

from repro.__main__ import build_parser, main


@pytest.fixture
def c_file(tmp_path):
    f = tmp_path / "prog.c"
    f.write_text(
        """
        struct S { int *s1; int *s2; } s;
        int x, y, *p;
        void main(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }
        """
    )
    return str(f)


def run_cli(args, capsys):
    rc = main(args)
    out = capsys.readouterr().out
    return rc, out


class TestCLI:
    def test_default_dump(self, c_file, capsys):
        rc, out = run_cli([c_file], capsys)
        assert rc == 0
        assert "strategy: Common Initial Sequence" in out
        assert "p -> {x}" in out

    def test_query(self, c_file, capsys):
        rc, out = run_cli([c_file, "-q", "p", "-q", "s.s2"], capsys)
        assert rc == 0
        assert "p -> ['x']" in out
        assert "s.s2 -> ['y']" in out

    def test_query_unknown_name(self, c_file, capsys):
        with pytest.raises(SystemExit):
            main([c_file, "-q", "zzz"])

    def test_strategy_choice(self, c_file, capsys):
        rc, out = run_cli([c_file, "-s", "collapse_always", "-q", "p"], capsys)
        assert rc == 0
        assert "'x'" in out and "'y'" in out  # collapsed result

    def test_offsets_abi(self, c_file, capsys):
        rc32, out32 = run_cli([c_file, "-s", "offsets", "-q", "s.s2"], capsys)
        rc64, out64 = run_cli(
            [c_file, "-s", "offsets", "--abi", "lp64", "-q", "s.s2"], capsys
        )
        assert rc32 == rc64 == 0
        assert "y+0" in out32 and "y+0" in out64

    def test_derefs_mode(self, tmp_path, capsys):
        f = tmp_path / "d.c"
        f.write_text("int *p, x; void main(void) { x = *p; p = &x; x = *p; }")
        rc, out = run_cli([str(f), "--derefs"], capsys)
        assert rc == 0
        assert "sites" in out

    def test_compare_mode(self, c_file, capsys):
        rc, out = run_cli([c_file, "--compare"], capsys)
        assert rc == 0
        for name in ("Collapse Always", "Collapse on Cast",
                     "Common Initial Sequence", "Offsets"):
            assert name in out

    def test_pessimistic_mode(self, tmp_path, capsys):
        f = tmp_path / "bad.c"
        f.write_text(
            """
            struct G { int *a; int *b; } g;
            int x, out;
            int **q;
            void main(void) {
                g.a = &x;
                q = (int **)((char *)&g + 4);
                out = **q;
            }
            """
        )
        rc, out = run_cli([str(f), "--no-assumption-1"], capsys)
        assert rc == 0
        assert "possibly-corrupted" in out

    def test_local_name_resolution(self, tmp_path, capsys):
        f = tmp_path / "loc.c"
        f.write_text("int x; void main(void) { int *lp = &x; }")
        rc, out = run_cli([str(f), "-q", "lp"], capsys)
        assert rc == 0
        assert "lp -> ['x']" in out

    def test_parser_help_strategies(self):
        parser = build_parser()
        # All five registered strategies (4 paper + strided) accepted.
        ns = parser.parse_args(["f.c", "-s", "strided_offsets"])
        assert ns.strategy == "strided_offsets"

    def test_help_epilog_cross_links_docs(self):
        # --help names both subcommands and points at their docs.
        text = build_parser().format_help()
        assert "serve" in text
        assert "docs/service.md" in text
        assert "explain" in text
        assert "docs/observability.md" in text


class TestStrictAndLenientCLI:
    """Front-end failures never escape as tracebacks (see ISSUE PR 5)."""

    BAD = """
        struct S { int x; };
        struct S s; int g; int *p;
        void main(void) { p = &s.x; g = g.field; }
        """

    @pytest.fixture
    def bad_file(self, tmp_path):
        f = tmp_path / "bad.c"
        f.write_text(self.BAD)
        return str(f)

    def test_strict_failure_is_one_line_and_nonzero(self, bad_file, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main([bad_file])
        # SystemExit with a message string means a nonzero exit status.
        msg = str(exc_info.value.code)
        assert "bad.c:4" in msg
        assert "error:" in msg
        assert "member access .field on non-struct" in msg
        assert "\n" not in msg
        assert "Traceback" not in capsys.readouterr().err

    def test_lenient_flag_analyzes_and_reports(self, bad_file, capsys):
        rc = main([bad_file, "--lenient", "-q", "p"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "p -> ['s.x']" in captured.out
        assert "degraded in lenient mode" in captured.err
        assert "member access .field on non-struct" in captured.err

    def test_parse_error_exits_nonzero_even_lenient(self, tmp_path, capsys):
        f = tmp_path / "broken.c"
        f.write_text("int g = ;")
        for args in ([str(f)], [str(f), "--lenient"]):
            with pytest.raises(SystemExit) as exc_info:
                main(args)
            msg = str(exc_info.value.code)
            assert "broken.c" in msg
            assert "\n" not in msg

    def test_missing_file_is_clean_error(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["/no/such/file.c"])
        assert "cannot read" in str(exc_info.value.code)
