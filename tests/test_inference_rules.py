"""Direct tests of the five inference rules (paper Figure 2).

These construct normalized IR statements by hand — no C front end — and
check each rule's derivations, mirroring the paper's step-by-step
derivations in §3.
"""

import pytest

from repro.core import CollapseOnCast, analyze
from repro.ctype.types import Field, StructType, int_t, ptr
from repro.ir.program import FunctionInfo, Program
from repro.ir.refs import FieldRef
from repro.ir.stmts import AddrOf, Copy, FieldAddr, Load, PtrArith, Store


S = StructType("S").define([Field("s1", ptr(int_t)), Field("s2", ptr(int_t))])


def make_program(stmts):
    """Wrap hand-built statements into a one-function program."""
    prog = Program("<handmade>")
    # Objects were created by the caller's factory; adopt it.
    return prog, stmts


@pytest.fixture
def env():
    class Env:
        def __init__(self):
            self.prog = Program("<handmade>")
            self.obj = self.prog.objects

        def run(self, stmts, strategy=None):
            info = FunctionInfo(
                name="f",
                obj=self.obj.function("f", int_t) if self.obj.lookup("f") is None
                else self.obj.lookup("f"),
            )
            info.stmts = list(stmts)
            self.prog.add_function(info)
            return analyze(self.prog, strategy or CollapseOnCast())

    return Env()


class TestRule1AddrOf:
    def test_plain(self, env):
        x = env.obj.global_var("x", int_t)
        p = env.obj.global_var("p", ptr(int_t))
        r = env.run([AddrOf(lhs=p, target=FieldRef(x, ()))])
        assert r.points_to_names(p) == {"x"}

    def test_field_target(self, env):
        s = env.obj.global_var("s", S)
        p = env.obj.global_var("p", ptr(ptr(int_t)))
        r = env.run([AddrOf(lhs=p, target=FieldRef(s, ("s2",)))])
        assert list(r.points_to(p)) == [FieldRef(s, ("s2",))]

    def test_struct_target_normalizes_to_first_field(self, env):
        s = env.obj.global_var("s", S)
        p = env.obj.global_var("p", ptr(S))
        r = env.run([AddrOf(lhs=p, target=FieldRef(s, ()))])
        # Problem 1: &s and &s.s1 are the same normalized location.
        assert list(r.points_to(p)) == [FieldRef(s, ("s1",))]


class TestRule2FieldAddr:
    def test_matching_type(self, env):
        s = env.obj.global_var("s", S)
        p = env.obj.global_var("p", ptr(S))
        q = env.obj.global_var("q", ptr(ptr(int_t)))
        r = env.run([
            AddrOf(lhs=p, target=FieldRef(s, ())),
            FieldAddr(lhs=q, ptr=p, path=("s2",)),
        ])
        assert list(r.points_to(q)) == [FieldRef(s, ("s2",))]

    def test_counts_lookup(self, env):
        s = env.obj.global_var("s", S)
        p = env.obj.global_var("p", ptr(S))
        q = env.obj.global_var("q", ptr(ptr(int_t)))
        r = env.run([
            AddrOf(lhs=p, target=FieldRef(s, ())),
            FieldAddr(lhs=q, ptr=p, path=("s2",)),
        ])
        assert r.stats.lookup_calls == 1


class TestRule3Copy:
    def test_scalar_copy(self, env):
        x = env.obj.global_var("x", int_t)
        p = env.obj.global_var("p", ptr(int_t))
        q = env.obj.global_var("q", ptr(int_t))
        r = env.run([
            AddrOf(lhs=p, target=FieldRef(x, ())),
            Copy(lhs=q, rhs=FieldRef(p, ())),
        ])
        assert r.points_to_names(q) == {"x"}

    def test_struct_copy_fieldwise(self, env):
        x = env.obj.global_var("x", int_t)
        y = env.obj.global_var("y", int_t)
        a = env.obj.global_var("a", S)
        b = env.obj.global_var("b", S)
        tmp1 = env.obj.global_var("tmp1", ptr(int_t))
        tmp2 = env.obj.global_var("tmp2", ptr(int_t))
        r = env.run([
            AddrOf(lhs=tmp1, target=FieldRef(x, ())),
            AddrOf(lhs=tmp2, target=FieldRef(y, ())),
            # a.s1 = &x; a.s2 = &y  (via stores through field addresses)
            AddrOf(lhs=env.obj.global_var("a1", ptr(ptr(int_t))),
                   target=FieldRef(a, ("s1",))),
            Store(ptr=env.obj.lookup("a1"), rhs=tmp1),
            AddrOf(lhs=env.obj.global_var("a2", ptr(ptr(int_t))),
                   target=FieldRef(a, ("s2",))),
            Store(ptr=env.obj.lookup("a2"), rhs=tmp2),
            Copy(lhs=b, rhs=FieldRef(a, ())),
        ])
        assert r.points_to_names(FieldRef(b, ("s1",))) == {"x"}
        assert r.points_to_names(FieldRef(b, ("s2",))) == {"y"}
        # Fields stay separate: no cross-pollution.
        assert r.points_to_names(FieldRef(b, ("s1",))) != {"x", "y"}

    def test_copy_counts_resolve(self, env):
        a = env.obj.global_var("a", S)
        b = env.obj.global_var("b", S)
        r = env.run([Copy(lhs=b, rhs=FieldRef(a, ()))])
        assert r.stats.resolve_calls == 1
        assert r.stats.resolve_struct_calls == 1
        assert r.stats.resolve_mismatch_calls == 0


class TestRule4Load:
    def test_load_through_pointer(self, env):
        x = env.obj.global_var("x", int_t)
        cell = env.obj.global_var("cell", ptr(int_t))
        pp = env.obj.global_var("pp", ptr(ptr(int_t)))
        out = env.obj.global_var("out", ptr(int_t))
        r = env.run([
            AddrOf(lhs=cell, target=FieldRef(x, ())),
            AddrOf(lhs=pp, target=FieldRef(cell, ())),
            Load(lhs=out, ptr=pp),
        ])
        assert r.points_to_names(out) == {"x"}

    def test_load_from_struct_start(self, env):
        # *q where q points to a struct: copies sizeof(lhs) bytes from
        # the struct start, i.e. its first field's facts.
        x = env.obj.global_var("x", int_t)
        s = env.obj.global_var("s", S)
        sp = env.obj.global_var("sp", ptr(S))
        t1 = env.obj.global_var("t1", ptr(ptr(int_t)))
        t2 = env.obj.global_var("t2", ptr(int_t))
        out = env.obj.global_var("out", ptr(int_t))
        r = env.run([
            AddrOf(lhs=t1, target=FieldRef(s, ("s1",))),
            AddrOf(lhs=t2, target=FieldRef(x, ())),
            Store(ptr=t1, rhs=t2),
            AddrOf(lhs=sp, target=FieldRef(s, ())),
            Load(lhs=out, ptr=sp),
        ])
        assert "x" in r.points_to_names(out)


class TestRule5Store:
    def test_store_through_pointer(self, env):
        x = env.obj.global_var("x", int_t)
        target = env.obj.global_var("target", ptr(int_t))
        pp = env.obj.global_var("pp", ptr(ptr(int_t)))
        val = env.obj.global_var("val", ptr(int_t))
        r = env.run([
            AddrOf(lhs=pp, target=FieldRef(target, ())),
            AddrOf(lhs=val, target=FieldRef(x, ())),
            Store(ptr=pp, rhs=val),
        ])
        assert r.points_to_names(target) == {"x"}

    def test_weak_update(self, env):
        # Flow-insensitive stores are weak: both values accumulate.
        x = env.obj.global_var("x", int_t)
        y = env.obj.global_var("y", int_t)
        target = env.obj.global_var("target", ptr(int_t))
        pp = env.obj.global_var("pp", ptr(ptr(int_t)))
        v1 = env.obj.global_var("v1", ptr(int_t))
        v2 = env.obj.global_var("v2", ptr(int_t))
        r = env.run([
            AddrOf(lhs=pp, target=FieldRef(target, ())),
            AddrOf(lhs=v1, target=FieldRef(x, ())),
            AddrOf(lhs=v2, target=FieldRef(y, ())),
            Store(ptr=pp, rhs=v1),
            Store(ptr=pp, rhs=v2),
        ])
        assert r.points_to_names(target) == {"x", "y"}


class TestPtrArithRule:
    def test_smears_outermost_object(self, env):
        env.obj.global_var("x", int_t)  # registered but never smeared into
        s = env.obj.global_var("s", S)
        p = env.obj.global_var("p", ptr(ptr(int_t)))
        q = env.obj.global_var("q", ptr(ptr(int_t)))
        r = env.run([
            AddrOf(lhs=p, target=FieldRef(s, ("s1",))),
            PtrArith(lhs=q, operands=(p,)),
        ])
        assert set(r.points_to(q)) == {
            FieldRef(s, ("s1",)), FieldRef(s, ("s2",))
        }

    def test_non_pointer_operand_no_facts(self, env):
        a = env.obj.global_var("a", int_t)
        b = env.obj.global_var("b", int_t)
        c = env.obj.global_var("c", int_t)
        r = env.run([PtrArith(lhs=c, operands=(a, b))])
        assert r.points_to_names(c) == set()
