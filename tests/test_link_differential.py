"""The linked == concatenated differential gate (ISSUE 9 criterion).

For EVERY benchmark-suite program: split it into translation units at
function boundaries (:func:`repro.link.split_translation_units`), link
the TUs back into one program, and require *byte-identical* analysis
against the single-TU parse of the concatenated TU sources —

- the points-to relation (every fact),
- per-dereference set sizes (the Figure 4 metric),
- every order-independent counter (``_UNGATED_STATS`` excluded).

Soundness of the comparison: the linker's merge runs one shared
Normalizer over the very declaration stream a concatenated parse would
see (``concat_sources`` inserts ``# 1 "file"`` line markers, so even
heap-site names — which embed line numbers — agree), so any divergence
is a linker bug, not noise.  The fuzz leg extends the same contract to
generated programs, and additionally checks lenient linking never
raises.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import _UNGATED_STATS
from repro.clients.derefstats import deref_stats
from repro.core import ALL_STRATEGIES, Engine
from repro.frontend import program_from_c
from repro.link import (
    SplitError,
    concat_sources,
    link_sources,
    split_translation_units,
)
from repro.suite.fuzz import check_multi_tu_source
from repro.suite.generator import ADVERSARIAL, generate_program
from repro.suite.registry import SUITE, load_source

PARTS = 3


@pytest.fixture(scope="module")
def suite_tus():
    """Split every suite program once for the whole module."""
    out = {}
    for bp in SUITE:
        try:
            out[bp.name] = split_translation_units(
                load_source(bp), name=bp.filename, parts=PARTS
            )
        except SplitError as err:  # pragma: no cover - suite is splittable
            pytest.fail(f"{bp.name} must be splittable: {err}")
    return out


def _snapshot(program, cls):
    result = Engine(program, cls()).solve()
    ds = deref_stats(result)
    return (
        sorted(map(repr, result.facts.all_facts())),
        sorted((s.line, s.pointer_name, s.set_size) for s in ds.sites),
        {k: v for k, v in result.stats.as_dict().items()
         if k not in _UNGATED_STATS},
    )


@pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
@pytest.mark.parametrize("bp", SUITE, ids=lambda bp: bp.name)
def test_linked_equals_concatenated(suite_tus, bp, cls):
    tus = suite_tus[bp.name]
    assert len(tus) == PARTS
    linked = link_sources(tus, name=bp.filename)
    concat = program_from_c(concat_sources(tus), bp.filename)
    assert linked.link_info.tus_linked == PARTS
    lf, ld, lg = _snapshot(linked, cls)
    cf, cd, cg = _snapshot(concat, cls)
    assert lf == cf, "facts diverged"
    assert ld == cd, "deref profile diverged"
    assert lg == cg, "gated stats diverged"


def test_split_caps_parts_at_function_count():
    tus = split_translation_units(
        "int x, *p; void main(void) { p = &x; }", name="one.c", parts=5
    )
    assert len(tus) == 1  # one function definition -> one TU


@pytest.mark.parametrize("seed", range(12))
def test_fuzz_multi_tu_contract(seed):
    """Generated programs: lenient linking never raises, and linked ==
    concatenated whenever the program splits and parses strictly."""
    source = generate_program(seed, ADVERSARIAL)
    failures = check_multi_tu_source(
        source, name=f"<fuzz:{seed}>",
        strategy_keys=["common_initial_sequence"], seed=seed,
    )
    assert not failures, "; ".join(map(str, failures))
