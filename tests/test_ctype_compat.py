"""Unit tests for ANSI type compatibility and common initial sequences."""

from repro.ctype.compat import common_initial_sequence, compatible
from repro.ctype.types import (
    EnumType,
    Field,
    StructType,
    UnionType,
    array_of,
    char,
    double_t,
    func,
    int_t,
    long_t,
    ptr,
    uint,
    void,
)


def mkstruct(tag, *fields):
    out = []
    for f in fields:
        name, t = f[0], f[1]
        bw = f[2] if len(f) > 2 else None
        out.append(Field(name, t, bw))
    return StructType(tag).define(out)


class TestCompatibleScalars:
    def test_identical(self):
        assert compatible(int_t, int_t)
        assert compatible(double_t, double_t)

    def test_signedness_matters(self):
        assert not compatible(int_t, uint)

    def test_kind_matters(self):
        assert not compatible(int_t, long_t)
        assert not compatible(char, int_t)

    def test_enum_compatible_with_int(self):
        # Paper footnote 1: "An int is compatible with an enum".
        e = EnumType("color")
        assert compatible(e, int_t)
        assert compatible(int_t, e)
        assert compatible(e, EnumType("other"))
        assert not compatible(e, uint)
        assert not compatible(e, long_t)

    def test_quals_must_match(self):
        # Paper footnote 1: volatile/const only compatible with same.
        v = int_t.with_quals(["volatile"])
        assert not compatible(v, int_t)
        assert compatible(v, int_t.with_quals(["volatile"]))

    def test_void(self):
        assert compatible(void, void)
        assert not compatible(void, int_t)


class TestCompatibleDerived:
    def test_pointers_need_compatible_pointees(self):
        assert compatible(ptr(int_t), ptr(int_t))
        assert not compatible(ptr(int_t), ptr(uint))
        assert not compatible(ptr(int_t), ptr(void))

    def test_arrays(self):
        assert compatible(array_of(int_t, 5), array_of(int_t, 5))
        assert compatible(array_of(int_t, 5), array_of(int_t))  # incomplete ok
        assert not compatible(array_of(int_t, 5), array_of(int_t, 6))
        assert not compatible(array_of(int_t, 5), array_of(char, 5))

    def test_functions(self):
        f1 = func(int_t, ptr(char))
        f2 = func(int_t, ptr(char))
        assert compatible(f1, f2)
        assert not compatible(f1, func(int_t, ptr(char), varargs=True))
        assert not compatible(f1, func(void, ptr(char)))


class TestCompatibleRecords:
    def test_same_object(self):
        s = mkstruct("A", ("x", int_t))
        assert compatible(s, s)

    def test_structural_same_tag(self):
        a = mkstruct("Pt", ("x", int_t), ("y", int_t))
        b = mkstruct("Pt2", ("x", int_t), ("y", int_t))
        b.tag = "Pt"  # simulate declaration in another translation unit
        assert compatible(a, b)

    def test_different_tags_incompatible(self):
        a = mkstruct("A1", ("x", int_t))
        b = mkstruct("B1", ("x", int_t))
        assert not compatible(a, b)

    def test_different_field_names_incompatible(self):
        a = mkstruct("N", ("x", int_t))
        b = mkstruct("N2", ("y", int_t))
        b.tag = "N"
        assert not compatible(a, b)

    def test_struct_vs_union(self):
        s = mkstruct("SU", ("x", int_t))
        u = UnionType("SU").define([Field("x", int_t)])
        assert not compatible(s, u)

    def test_incomplete_same_tag_compatible(self):
        a = mkstruct("F", ("x", int_t))
        fwd = StructType("F")
        assert compatible(a, fwd)

    def test_recursive_types(self):
        n1 = StructType("Node")
        n1.define([Field("v", int_t), Field("next", ptr(n1))])
        n2 = StructType("Node")
        n2.define([Field("v", int_t), Field("next", ptr(n2))])
        assert compatible(n1, n2)


class TestCommonInitialSequence:
    def test_full_match(self):
        a = mkstruct("CA", ("x", int_t), ("y", ptr(char)))
        b = mkstruct("CB", ("u", int_t), ("v", ptr(char)))
        cis = common_initial_sequence(a, b)
        assert [(f.name, g.name) for f, g in cis] == [("x", "u"), ("y", "v")]

    def test_partial_match(self):
        # Paper §4.3.3 example: S{int*,int*,int*} vs T{int*,int*,char,int*}.
        s = mkstruct("S", ("s1", ptr(int_t)), ("s2", ptr(int_t)), ("s3", ptr(int_t)))
        t = mkstruct("T", ("t1", ptr(int_t)), ("t2", ptr(int_t)), ("t3", char),
                     ("t4", ptr(int_t)))
        cis = common_initial_sequence(s, t)
        assert [(f.name, g.name) for f, g in cis] == [("s1", "t1"), ("s2", "t2")]

    def test_empty_when_first_differs(self):
        a = mkstruct("EA", ("x", ptr(int_t)))
        b = mkstruct("EB", ("y", char))
        assert common_initial_sequence(a, b) == []

    def test_incomplete_gives_empty(self):
        a = mkstruct("IA", ("x", int_t))
        assert common_initial_sequence(a, StructType("Fwd2")) == []

    def test_bitfield_width_must_match(self):
        a = StructType("BA").define([Field("x", int_t, 3), Field("y", int_t)])
        b = StructType("BB").define([Field("u", int_t, 4), Field("v", int_t)])
        assert common_initial_sequence(a, b) == []
        c = StructType("BC").define([Field("u", int_t, 3), Field("v", int_t)])
        assert len(common_initial_sequence(a, c)) == 2

    def test_enum_int_fields_pair(self):
        e = EnumType("mode")
        a = mkstruct("MA", ("tag", e), ("p", ptr(char)))
        b = mkstruct("MB", ("tag", int_t), ("q", ptr(char)))
        assert len(common_initial_sequence(a, b)) == 2
