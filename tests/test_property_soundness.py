"""Property-based soundness tests.

For randomly generated straight-line C programs, a concrete byte-level
execution is one possible run; every pointer it actually stores must be
covered by every strategy's points-to result.  This is the fundamental
safety property of the paper's framework ("a safe approximation
(superset) of the set of locations to which a pointer may point", §1).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ALL_STRATEGIES, analyze
from repro.frontend import program_from_c
from repro.suite import GenConfig, generate_program
from repro.testing import check_soundness, run_straightline

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_one(seed: int, cfg: GenConfig, strategy_cls) -> None:
    src = generate_program(seed, cfg)
    program = program_from_c(src, name=f"gen{seed}")
    result = analyze(program, strategy_cls())
    machine = run_straightline(program)
    violations = check_soundness(result, machine)
    assert not violations, (
        f"seed={seed} strategy={strategy_cls.key}:\n"
        + "\n".join(violations)
        + "\n--- program ---\n"
        + src
    )


@pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES)
class TestSoundnessOnGeneratedPrograms:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(**SETTINGS)
    def test_default_config(self, strategy_cls, seed):
        run_one(seed, GenConfig(), strategy_cls)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(**SETTINGS)
    def test_cast_heavy(self, strategy_cls, seed):
        cfg = GenConfig(cast_probability=0.9, cis_probability=0.8,
                        n_statements=60)
        run_one(seed, cfg, strategy_cls)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(**SETTINGS)
    def test_deep_structs(self, strategy_cls, seed):
        cfg = GenConfig(n_structs=6, max_fields=6, cast_probability=0.5)
        run_one(seed, cfg, strategy_cls)


class TestPrecisionOrdering:
    """Offsets ⊑ portable strategies at object granularity.

    The portable strategies must over-approximate the concrete layout
    the Offsets instance assumes: for every location, the set of
    *objects* Offsets says it may point to must be a subset of what each
    portable strategy reports (when queried at the same source object).
    This is a statistical check over generated programs rather than a
    theorem about arbitrary C, but any violation is a real bug.
    """

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(**SETTINGS)
    def test_collapse_always_is_coarsest(self, seed):
        from repro import CollapseAlways, Offsets

        src = generate_program(seed, GenConfig(cast_probability=0.6))
        program = program_from_c(src)
        fine = analyze(program, Offsets())
        coarse = analyze(program, CollapseAlways())
        for obj in program.objects.all_objects():
            fine_objs = set()
            for ref in fine.facts.refs_of_obj(obj):
                for tgt in fine.facts.points_to(ref):
                    fine_objs.add(tgt.obj)
            coarse_objs = set()
            for ref in coarse.facts.refs_of_obj(obj):
                for tgt in coarse.facts.points_to(ref):
                    coarse_objs.add(tgt.obj)
            missing = {o.name for o in fine_objs - coarse_objs}
            assert not missing, f"{obj.name}: CollapseAlways misses {missing}"


class TestGeneratorProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_deterministic(self, seed):
        cfg = GenConfig()
        assert generate_program(seed, cfg) == generate_program(seed, cfg)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_parses(self, seed):
        src = generate_program(seed, GenConfig(cast_probability=1.0))
        program = program_from_c(src)
        assert program.stmt_count() > 0
