"""Tests for the may-alias client."""

from repro import (
    CollapseAlways,
    CommonInitialSequence,
    Offsets,
    analyze_c,
)
from repro.clients import may_alias, may_point_to_same, refs_overlap
from repro.ir.refs import FieldRef, OffsetRef

SRC = """
struct S { int *a; int *b; } s;
int x, y, z;
int *p, *q, *r;
void main(void) {
    p = &x;
    q = &x;
    r = &y;
    s.a = &x;
    s.b = &z;
}
"""


class TestMayAlias:
    def test_same_target_aliases(self):
        res = analyze_c(SRC, CommonInitialSequence())
        o = res.program.objects
        assert may_alias(res, o.lookup("p"), o.lookup("q"))

    def test_different_targets_do_not(self):
        res = analyze_c(SRC, CommonInitialSequence())
        o = res.program.objects
        assert not may_alias(res, o.lookup("p"), o.lookup("r"))

    def test_field_refs_as_queries(self):
        res = analyze_c(SRC, CommonInitialSequence())
        s = res.program.objects.lookup("s")
        p = res.program.objects.lookup("p")
        assert may_alias(res, FieldRef(s, ("a",)), p)
        assert not may_alias(res, FieldRef(s, ("b",)), p)

    def test_empty_sets_never_alias(self):
        res = analyze_c("int *p, *q; void main(void) { }",
                        CommonInitialSequence())
        o = res.program.objects
        assert not may_alias(res, o.lookup("p"), o.lookup("q"))

    def test_collapse_always_overapproximates(self):
        # Under Collapse Always a pointer to s.a and a pointer to s.b
        # alias (both "point to s"); field-sensitively they don't.
        src = """
        struct S { int a; int b; } s;
        int *pa, *pb;
        void main(void) { pa = &s.a; pb = &s.b; }
        """
        coarse = analyze_c(src, CollapseAlways())
        fine = analyze_c(src, CommonInitialSequence())
        oc = coarse.program.objects
        of = fine.program.objects
        assert may_alias(coarse, oc.lookup("pa"), oc.lookup("pb"))
        assert not may_alias(fine, of.lookup("pa"), of.lookup("pb"))

    def test_may_point_to_same_stricter(self):
        res = analyze_c(SRC, CommonInitialSequence())
        o = res.program.objects
        assert may_point_to_same(res, o.lookup("p"), o.lookup("q"))
        assert not may_point_to_same(res, o.lookup("p"), o.lookup("r"))


class TestRefsOverlap:
    def test_field_prefix_overlap(self):
        res = analyze_c(SRC, CommonInitialSequence())
        s = res.program.objects.lookup("s")
        assert refs_overlap(res, FieldRef(s, ()), FieldRef(s, ("a",)))
        assert not refs_overlap(res, FieldRef(s, ("a",)), FieldRef(s, ("b",)))

    def test_different_objects_never(self):
        res = analyze_c(SRC, CommonInitialSequence())
        o = res.program.objects
        x, y = o.lookup("x"), o.lookup("y")
        assert not refs_overlap(res, FieldRef(x, ()), FieldRef(y, ()))

    def test_offset_overlap(self):
        res = analyze_c(SRC, Offsets())
        s = res.program.objects.lookup("s")
        assert refs_overlap(res, OffsetRef(s, 0), OffsetRef(s, 0))
        assert not refs_overlap(res, OffsetRef(s, 0), OffsetRef(s, 4))

    def test_struct_pointer_aliases_first_field_pointer(self):
        # The Problem-1 identity: &s and &s.a are the same location.
        src = """
        struct S { int *a; int *b; } s, *ps;
        int **pa;
        void main(void) { ps = &s; pa = &s.a; }
        """
        for strategy in (CommonInitialSequence(), Offsets()):
            res = analyze_c(src, strategy)
            o = res.program.objects
            assert may_alias(res, o.lookup("ps"), o.lookup("pa")), strategy.key
