"""The modular == whole-program differential gate (ISSUE 9 criterion).

For EVERY benchmark-suite program and ALL FOUR framework instances:
solve bottom-up over the callgraph SCC DAG
(:func:`repro.core.modular.solve_modular`) and require exact equality
with the whole-program fixpoint — facts, deref profile, and every
order-independent counter.  Soundness of the gate: the staged schedule
merely reorders statement installation, and the Figure-2 rules are
monotone, so the least fixpoint (and everything determined by it) is
invariant — the same argument the incremental differential
(tests/test_session_incremental.py) rests on.

Also covered: the callgraph approximation and SCC schedule themselves,
summary extraction, the parallel (process-pool) pre-seeding path, and
the new counters' flow through ``EngineStats``.
"""

from __future__ import annotations

import pytest

from repro import AnalysisSession, CommonInitialSequence
from repro.bench.harness import _UNGATED_STATS, load_program
from repro.clients.derefstats import deref_stats
from repro.core import ALL_STRATEGIES, Engine
from repro.core.modular import (
    approximate_callgraph,
    scc_schedule,
    solve_modular,
)
from repro.frontend import program_from_c
from repro.suite.registry import SUITE


@pytest.fixture(scope="module")
def suite_programs():
    return {bp.name: load_program(bp) for bp in SUITE}


def _snapshot(result):
    ds = deref_stats(result)
    return (
        sorted(map(repr, result.facts.all_facts())),
        sorted((s.line, s.pointer_name, s.set_size) for s in ds.sites),
        {k: v for k, v in result.stats.as_dict().items()
         if k not in _UNGATED_STATS},
    )


@pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
@pytest.mark.parametrize("bp", SUITE, ids=lambda bp: bp.name)
def test_modular_equals_whole_program(suite_programs, bp, cls):
    program = suite_programs[bp.name]
    whole = Engine(program, cls()).solve()
    mod = solve_modular(program, cls())
    wf, wd, wg = _snapshot(whole)
    mf, md, mg = _snapshot(mod.result)
    assert mf == wf, "facts diverged"
    assert md == wd, "deref profile diverged"
    assert mg == wg, "gated stats diverged"
    assert mod.stats.summaries_computed == len(program.functions)
    assert mod.stats.scc_parallel_batches == 0  # serial mode


# ----------------------------------------------------------------------
# Callgraph and schedule.
# ----------------------------------------------------------------------
RECURSIVE = """
int *shared;
int *leaf(int *x) { return x; }
int *even(int n, int *x);
int *odd(int n, int *x) { return even(n - 1, leaf(x)); }
int *even(int n, int *x) { return n ? odd(n - 1, x) : x; }
void main(void) { int v; shared = odd(3, &v); }
"""


def test_callgraph_and_scc_levels():
    program = program_from_c(RECURSIVE, "rec.c")
    cg = approximate_callgraph(program)
    assert cg["odd"] == {"even", "leaf"}
    assert cg["even"] == {"odd"}
    assert cg["main"] == {"odd"}
    sched = scc_schedule(program)
    # odd/even form one SCC; leaf sits below it; main above it.
    scc_of = sched.scc_of
    assert scc_of["odd"] == scc_of["even"]
    assert scc_of["leaf"] != scc_of["odd"]
    levels = {fn: lvl for lvl, idxs in enumerate(sched.levels)
              for i in idxs for fn in sched.sccs[i]}
    assert levels["leaf"] < levels["odd"] == levels["even"] < levels["main"]


def test_indirect_calls_target_address_taken_functions():
    program = program_from_c(
        """
        int cb_a(void) { return 1; }
        int cb_b(void) { return 2; }
        int never(void) { return 3; }
        int (*fp)(void);
        void main(void) { fp = cb_a; fp = cb_b; fp(); }
        """,
        "fp.c",
    )
    cg = approximate_callgraph(program)
    assert "cb_a" in cg["main"] and "cb_b" in cg["main"]
    assert "never" not in cg["main"]


def test_summaries_capture_param_and_return_pointees():
    program = program_from_c(RECURSIVE, "rec.c")
    mod = solve_modular(program, CommonInitialSequence())
    leaf = mod.summaries["leaf"]
    assert leaf.params["leaf::x"] == ["main::v"]
    assert leaf.returns == ["main::v"]
    assert mod.summaries["main"].returns == []


# ----------------------------------------------------------------------
# Parallel mode.
# ----------------------------------------------------------------------
def test_parallel_preseed_matches_whole_program(suite_programs):
    program = suite_programs[SUITE[2].name]
    whole = Engine(program, CommonInitialSequence()).solve()
    mod = solve_modular(program, CommonInitialSequence(), workers=2)
    assert _snapshot(mod.result) == _snapshot(whole)
    # The pool ran (or gracefully fell back, on exotic platforms).
    assert mod.stats.scc_parallel_batches >= 0


def test_session_solve_modular():
    session = AnalysisSession.from_c(RECURSIVE, "rec.c")
    mod = session.solve_modular(CommonInitialSequence())
    whole = session.solve(CommonInitialSequence())
    assert sorted(map(repr, mod.facts.all_facts())) == \
        sorted(map(repr, whole.facts.all_facts()))
    assert mod.stats.summaries_computed == 4


def test_counters_flow_through_stats_dict():
    program = program_from_c(RECURSIVE, "rec.c")
    mod = solve_modular(program, CommonInitialSequence())
    d = mod.stats.as_dict()
    assert d["summaries_computed"] == 4
    assert "scc_parallel_batches" in d


# ---------------------------------------------------------------------------
# Worker-pool failure handling: the serial fallback is sound but must
# never be silent, and REPRO_DEBUG=1 must surface programmer errors.
# ---------------------------------------------------------------------------
def _fail_preseed(exc):
    def boom(*args, **kwargs):
        raise exc
    return boom


def test_pool_failure_degrades_with_warning(monkeypatch):
    """An injected pool failure falls back to the exact serial schedule,
    records a WARNING diagnostic, and bumps modular_pool_failures."""
    import repro.core.modular as modular
    from repro.diag import DiagnosticSink, Severity

    monkeypatch.delenv("REPRO_DEBUG", raising=False)
    monkeypatch.setattr(
        modular, "_parallel_preseed",
        _fail_preseed(RuntimeError("injected worker crash")))
    program = program_from_c(RECURSIVE, "rec.c")
    sink = DiagnosticSink()
    mod = solve_modular(program, CommonInitialSequence(), workers=4,
                        diagnostics=sink)
    serial = solve_modular(program_from_c(RECURSIVE, "rec.c"),
                           CommonInitialSequence())
    assert mod.stats.modular_pool_failures == 1
    assert mod.stats.scc_parallel_batches == 0
    assert mod.facts.edge_count() == serial.facts.edge_count()
    warnings = [d for d in sink.records if d.kind == "modular-pool-failure"]
    assert len(warnings) == 1
    assert warnings[0].severity is Severity.WARNING
    assert "injected worker crash" in warnings[0].message


def test_pool_failure_reraises_under_repro_debug(monkeypatch):
    """REPRO_DEBUG=1 turns an unexpected (non-pool) failure into a
    raise instead of a silent serial fallback."""
    import repro.core.modular as modular

    monkeypatch.setenv("REPRO_DEBUG", "1")
    monkeypatch.setattr(
        modular, "_parallel_preseed",
        _fail_preseed(RuntimeError("programmer error")))
    program = program_from_c(RECURSIVE, "rec.c")
    with pytest.raises(RuntimeError, match="programmer error"):
        solve_modular(program, CommonInitialSequence(), workers=4)


def test_expected_pool_failures_degrade_even_under_debug(monkeypatch):
    """Pickling/pool failures are the fallback's designed inputs: they
    degrade (with the warning) even when REPRO_DEBUG=1."""
    import pickle

    import repro.core.modular as modular
    from repro.diag import DiagnosticSink

    monkeypatch.setenv("REPRO_DEBUG", "1")
    program = program_from_c(RECURSIVE, "rec.c")
    for exc in (pickle.PicklingError("unpicklable"), OSError("no pool")):
        monkeypatch.setattr(modular, "_parallel_preseed", _fail_preseed(exc))
        sink = DiagnosticSink()
        mod = solve_modular(program_from_c(RECURSIVE, "rec.c"),
                            CommonInitialSequence(), workers=4,
                            diagnostics=sink)
        assert mod.stats.modular_pool_failures == 1
        assert any(d.kind == "modular-pool-failure" for d in sink.records)
