"""The paper's examples under the LP64 ABI.

The portable strategies must produce identical results under any ABI;
the Offsets strategy produces different *references* but must stay sound
and precise on layout-independent programs.  These tests re-run key
paper examples under LP64 (8-byte pointers/longs).
"""


from repro import (
    ILP32,
    LP64,
    CollapseOnCast,
    CommonInitialSequence,
    Layout,
    Offsets,
    analyze_c,
)

INTRO = """
struct S { int *s1; int *s2; } s;
int x, y, *p;
void main(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }
"""


def names(res, name):
    return sorted(res.points_to_names(res.program.objects.lookup(name)))


class TestLP64:
    def test_intro_example_offsets_lp64(self):
        r = analyze_c(INTRO, Offsets(Layout(LP64)))
        assert names(r, "p") == ["x"]

    def test_offsets_refs_differ_across_abis(self):
        r32 = analyze_c(INTRO, Offsets(Layout(ILP32)))
        r64 = analyze_c(INTRO, Offsets(Layout(LP64)))
        s32 = r32.program.objects.lookup("s")
        s64 = r64.program.objects.lookup("s")
        from repro.ir.refs import FieldRef

        ref32 = r32.strategy.normalize(FieldRef(s32, ("s2",)))
        ref64 = r64.strategy.normalize(FieldRef(s64, ("s2",)))
        assert ref32.offset == 4 and ref64.offset == 8

    def test_portable_strategies_abi_invariant(self):
        for cls in (CollapseOnCast, CommonInitialSequence):
            r32 = analyze_c(INTRO, cls(Layout(ILP32)))
            r64 = analyze_c(INTRO, cls(Layout(LP64)))
            assert r32.facts.edge_count() == r64.facts.edge_count()
            assert names(r32, "p") == names(r64, "p")

    def test_complication2_lp64(self):
        # Under LP64 a double (8 bytes) holds only ONE pointer, so only
        # r1's address is recoverable through the double — the concrete
        # portability hazard the paper warns about, visible in analysis.
        src = """
        struct R { int *r1; int *r2; } r, r2v;
        double d;
        int x, y;
        int *ox, *oy;
        void main(void) {
            r.r1 = &x;
            r.r2 = &y;
            d = *(double *)&r;
            r2v = *(struct R *)&d;
            ox = r2v.r1;
            oy = r2v.r2;
        }
        """
        r64 = analyze_c(src, Offsets(Layout(LP64)))
        assert names(r64, "ox") == ["x"]
        # r2 (offset 8) is beyond the 8-byte double: nothing recoverable.
        assert names(r64, "oy") == []
        # Under ILP32 both pointers fit and both are recovered.
        r32 = analyze_c(src, Offsets(Layout(ILP32)))
        assert names(r32, "ox") == ["x"]
        assert names(r32, "oy") == ["y"]

    def test_cis_example_lp64(self):
        src = """
        struct S { int s1; int s2; int s3; } *p;
        struct T { int t1; int t2; char t3; int t4; } t;
        int *x, *y;
        void main(void) {
            p = (struct S *)&t;
            x = (int*)&(*p).s2;
            y = (int*)&(*p).s3;
        }
        """
        r = analyze_c(src, CommonInitialSequence(Layout(LP64)))
        assert [repr(q) for q in sorted(r.points_to(
            r.program.objects.lookup("x")), key=repr)] == ["t.t2"]
