"""Wire-level tests: the threading HTTP server, concurrency, and fuzz.

The acceptance contract for the service (ISSUE 8 / ROADMAP
"analysis-as-a-service"):

- ≥8 concurrent clients against a 4-slot LRU pool complete
  create → delta → query round-trips with correct per-client results,
  evictions surfacing only as structured 404s;
- every ADVERSARIAL fuzz program submitted over HTTP yields either a
  session or a structured JSON diagnostic response — never a 500;
- the ``python -m repro serve`` CLI announces its bound URL, serves a
  round-trip, and shuts down cleanly on SIGTERM.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.service import ServiceConfig, start_server
from repro.service.client import ServiceClient, ServiceClientError
from repro.suite.generator import ADVERSARIAL, generate_program

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def server():
    with start_server(ServiceConfig(port=0, pool_size=4)) as handle:
        yield handle


def client_source(i: int) -> str:
    return (f"int a{i}, b{i}, *p{i};\n"
            f"void main(void) {{ p{i} = &a{i}; }}\n")


class TestRoundTrip:
    def test_create_delta_query(self, server):
        client = ServiceClient(server.url)
        doc = client.create_session(client_source(0), name="rt.c")
        sid = doc["session"]["id"]
        assert client.points_to(sid, "p0")["names"] == ["a0"]
        client.add_statements(
            sid, [{"form": "addrof", "lhs": "p0", "target": "b0"}],
            function="main",
        )
        assert client.points_to(sid, "p0")["names"] == ["a0", "b0"]
        assert client.healthz()["sessions_live"] == 1

    def test_error_envelope_crosses_the_wire(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceClientError) as exc:
            client.create_session("int x = ;")
        assert exc.value.status == 422
        assert exc.value.kind == "analysis-failed"
        assert exc.value.diagnostics[0]["kind"] == "parse-error"
        assert exc.value.diagnostics[0]["severity"] == "ERROR"

    def test_invalid_json_body_is_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/sessions", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400
        payload = json.loads(exc.value.read())
        assert payload["error"]["kind"] == "bad-request"

    def test_oversized_body_is_413(self):
        config = ServiceConfig(port=0, max_request_bytes=512)
        with start_server(config) as handle:
            client = ServiceClient(handle.url)
            with pytest.raises(ServiceClientError) as exc:
                client.create_session("int x;" + " " * 4096)
            assert exc.value.status == 413
            assert exc.value.kind == "request-too-large"


class TestConcurrentClients:
    N_CLIENTS = 8
    ROUNDS = 4

    def test_eight_clients_four_slots(self, server):
        """The acceptance scenario: 8 clients, 4-slot pool, evictions."""
        errors = []

        def worker(i: int) -> None:
            client = ServiceClient(server.url)
            completed = 0
            try:
                while completed < self.ROUNDS:
                    doc = client.create_session(client_source(i),
                                                name=f"client{i}.c")
                    sid = doc["session"]["id"]
                    try:
                        q = client.points_to(sid, f"p{i}")
                        assert q["names"] == [f"a{i}"], q
                        client.add_statements(
                            sid,
                            [{"form": "addrof", "lhs": f"p{i}",
                              "target": f"b{i}"}],
                            function="main",
                        )
                        q = client.points_to(sid, f"p{i}")
                        assert q["names"] == [f"a{i}", f"b{i}"], q
                        completed += 1
                    except ServiceClientError as err:
                        # Evicted mid-round-trip by another tenant: the
                        # only legal failure, and it must be structured.
                        assert err.status == 404, err
                        assert err.kind == "unknown-session", err
            except Exception as exc:  # noqa: BLE001 - collected for report
                errors.append((i, exc))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors

        metrics = ServiceClient(server.url).metrics()["server"]
        # 8 tenants cycling through 4 slots must have evicted someone,
        # and the pool may never exceed its capacity.
        assert metrics["evictions"] > 0
        assert metrics["sessions_live"] <= 4
        assert metrics["sessions_created"] >= self.N_CLIENTS
        assert metrics["internal_errors"] == 0
        assert "5xx" not in metrics["responses_by_status"]

    def test_shared_session_concurrent_queries(self, server):
        """Many clients hammering ONE session serialize on its lock."""
        client = ServiceClient(server.url)
        sid = client.create_session(client_source(9))["session"]["id"]
        errors = []

        def worker() -> None:
            c = ServiceClient(server.url)
            try:
                for _ in range(10):
                    assert c.points_to(sid, "p9")["names"] == ["a9"]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        server_counters = client.metrics()["server"]
        # One engine solved; every other query was a solve-cache hit.
        assert server_counters["solves"] == 1
        assert server_counters["solve_cache_hits"] >= 79


class TestAdversarialOverHttp:
    SEEDS = range(0, 30)

    def test_fuzz_inputs_never_500(self):
        """Hostile translation units through the HTTP path: 2xx/4xx only."""
        config = ServiceConfig(port=0, pool_size=4)
        with start_server(config) as handle:
            client = ServiceClient(handle.url)
            outcomes = {"created": 0, "rejected": 0}
            for seed in self.SEEDS:
                source = generate_program(seed, ADVERSARIAL)
                for strict in (True, False):
                    try:
                        doc = client.create_session(
                            source, name=f"fuzz{seed}.c", strict=strict)
                        outcomes["created"] += 1
                        sid = doc["session"]["id"]
                        # Queries on a hostile program must also stay
                        # structured (callgraph/derefs need no target).
                        client.call_graph(sid)
                        client.deref_stats(sid)
                        client.diagnostics(sid)
                    except ServiceClientError as err:
                        outcomes["rejected"] += 1
                        assert 400 <= err.status < 500, (seed, strict, err)
                        assert err.payload["error"]["kind"], err.payload
            metrics = client.metrics()["server"]
            assert metrics["internal_errors"] == 0
            assert "5xx" not in metrics["responses_by_status"]
            # Lenient mode must accept essentially everything.
            assert outcomes["created"] >= len(self.SEEDS)


class TestServeCli:
    def _spawn(self, *args, env_extra=None):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        env.update(env_extra or {})
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )

    def test_announce_roundtrip_clean_shutdown(self):
        proc = self._spawn()
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("serving on http://"), line
            client = ServiceClient(line.split()[-1])
            sid = client.create_session(client_source(1))["session"]["id"]
            assert client.points_to(sid, "p1")["names"] == ["a1"]
            assert client.healthz()["status"] == "ok"
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "shutdown: clean" in out

    def test_bad_backend_fails_fast(self):
        proc = self._spawn(env_extra={"REPRO_BACKEND": "warpdrive"})
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 2
        assert "unknown propagation backend" in err
        assert "REPRO_BACKEND" in err
        assert "Traceback" not in err

    def test_out_of_range_port_fails_fast(self):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "99999"],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 2
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_explicit_backend_flag_round_trip(self):
        proc = self._spawn("--backend", "diffprop", "--lenient")
        try:
            line = proc.stdout.readline().strip()
            client = ServiceClient(line.split()[-1])
            # Lenient default: a degraded construct creates a session.
            doc = client.create_session(
                "int *p; int g;\nvoid main(void) { p = &g; g = g.oops; }")
            sid = doc["session"]["id"]
            assert client.points_to(sid, "p")["names"] == ["g"]
            [result] = client.metrics()["sessions"][0]["results"]
            assert result["backend"] == "diffprop"
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
