"""Unit tests of the four strategies' normalize / lookup / resolve.

These exercise the tunable functions directly, against types and objects
built by hand, mirroring the worked examples of paper §§4.2.2–4.3.3.
"""

import pytest

from repro.core import (
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    Offsets,
    Window,
)
from repro.ctype.layout import ILP32, LP64, Layout
from repro.ctype.types import (
    Field,
    StructType,
    array_of,
    char,
    double_t,
    int_t,
    ptr,
)
from repro.ir.objects import ObjectFactory
from repro.ir.refs import FieldRef, OffsetRef


def mk(tag, *fields):
    return StructType(tag).define([Field(n, t) for n, t in fields])


# Paper §4.3.2 example types.
S_SMALL = mk("S", ("s1", int_t), ("s2", char))
T_NEST = mk("T", ("t1", S_SMALL), ("t2", int_t), ("t3", char))

# Paper §4.3.3 example types.
S_CIS = mk("Scis", ("s1", int_t), ("s2", int_t), ("s3", int_t))
T_CIS = mk("Tcis", ("t1", int_t), ("t2", int_t), ("t3", char), ("t4", int_t))


@pytest.fixture
def objs():
    return ObjectFactory()


class TestCollapseAlways:
    def test_normalize_drops_path(self, objs):
        s = objs.global_var("s", T_NEST)
        ca = CollapseAlways()
        assert ca.normalize(FieldRef(s, ("t1", "s2"))) == FieldRef(s, ())

    def test_lookup_returns_whole_object(self, objs):
        t = objs.global_var("t", T_NEST)
        ca = CollapseAlways()
        refs, info = ca.lookup(S_SMALL, ("s2",), FieldRef(t, ()))
        assert refs == [FieldRef(t, ())]
        assert info.involved_struct

    def test_resolve_single_pair(self, objs):
        a = objs.global_var("a", S_SMALL)
        b = objs.global_var("b", T_NEST)
        ca = CollapseAlways()
        pairs, _ = ca.resolve(FieldRef(a, ()), FieldRef(b, ()), S_SMALL)
        assert pairs == [(FieldRef(a, ()), FieldRef(b, ()))]

    def test_target_weight_expands_structs(self, objs):
        t = objs.global_var("t", T_NEST)
        x = objs.global_var("x", int_t)
        ca = CollapseAlways()
        assert ca.target_weight(FieldRef(t, ())) == 4  # s1,s2,t2,t3
        assert ca.target_weight(FieldRef(x, ())) == 1


class TestCollapseOnCastNormalize:
    def test_struct_normalizes_to_innermost_first(self, objs):
        t = objs.global_var("t", T_NEST)
        coc = CollapseOnCast()
        assert coc.normalize(FieldRef(t, ())) == FieldRef(t, ("t1", "s1"))
        assert coc.normalize(FieldRef(t, ("t1",))) == FieldRef(t, ("t1", "s1"))
        assert coc.normalize(FieldRef(t, ("t2",))) == FieldRef(t, ("t2",))


class TestCollapseOnCastLookup:
    def test_matching_type_is_precise(self, objs):
        # Paper §4.3.2: lookup(struct S, s2, t.t1.s1) with p = &t.t1.
        t = objs.global_var("t", T_NEST)
        coc = CollapseOnCast()
        refs, info = coc.lookup(S_SMALL, ("s2",), FieldRef(t, ("t1", "s1")))
        assert refs == [FieldRef(t, ("t1", "s2"))]
        assert not info.mismatch

    def test_mismatch_returns_following_fields(self, objs):
        # Paper §4.3.2: lookup(struct S, s2, t.t2) → {t.t2, t.t3}.
        t = objs.global_var("t", T_NEST)
        coc = CollapseOnCast()
        refs, info = coc.lookup(S_SMALL, ("s2",), FieldRef(t, ("t2",)))
        assert set(refs) == {FieldRef(t, ("t2",)), FieldRef(t, ("t3",))}
        assert info.mismatch and info.involved_struct

    def test_scalar_exact(self, objs):
        x = objs.global_var("x", int_t)
        coc = CollapseOnCast()
        refs, info = coc.lookup(int_t, (), FieldRef(x, ()))
        assert refs == [FieldRef(x, ())]
        assert not info.mismatch


class TestCollapseOnCastResolve:
    def test_same_type_pairs_fieldwise(self, objs):
        a = objs.global_var("a", S_CIS)
        b = objs.global_var("b", S_CIS)
        coc = CollapseOnCast()
        pairs, info = coc.resolve(
            coc.normalize(FieldRef(a, ())), coc.normalize(FieldRef(b, ())), S_CIS
        )
        assert set(pairs) == {
            (FieldRef(a, ("s1",)), FieldRef(b, ("s1",))),
            (FieldRef(a, ("s2",)), FieldRef(b, ("s2",))),
            (FieldRef(a, ("s3",)), FieldRef(b, ("s3",))),
        }
        assert not info.mismatch

    def test_mismatched_copy_cross_product(self, objs):
        # Copying a T over an S: conservative cross product.
        a = objs.global_var("a", S_CIS)
        b = objs.global_var("b", T_CIS)
        coc = CollapseOnCast()
        pairs, info = coc.resolve(
            coc.normalize(FieldRef(a, ())), coc.normalize(FieldRef(b, ())), S_CIS
        )
        assert info.mismatch
        dsts = {d for d, _ in pairs}
        srcs = {s for _, s in pairs}
        assert dsts == {FieldRef(a, ("s1",)), FieldRef(a, ("s2",)), FieldRef(a, ("s3",))}
        assert srcs == {FieldRef(b, (f,)) for f in ("t1", "t2", "t3", "t4")}

    def test_complication_2_double_absorbs_struct(self, objs):
        # d = (double) r, struct R {int *r1; int *r2}: d pairs with both.
        R = mk("R", ("r1", ptr(int_t)), ("r2", ptr(int_t)))
        r = objs.global_var("r", R)
        d = objs.global_var("d", double_t)
        coc = CollapseOnCast()
        pairs, _ = coc.resolve(
            coc.normalize(FieldRef(d, ())), coc.normalize(FieldRef(r, ())), double_t
        )
        assert set(pairs) == {
            (FieldRef(d, ()), FieldRef(r, ("r1",))),
            (FieldRef(d, ()), FieldRef(r, ("r2",))),
        }


class TestCommonInitialSequenceLookup:
    def test_within_cis_precise(self, objs):
        # Paper §4.3.3: lookup(S, s2, normalize(t)) → {t.t2}.
        t = objs.global_var("t", T_CIS)
        cis = CommonInitialSequence()
        refs, info = cis.lookup(S_CIS, ("s2",), FieldRef(t, ("t1",)))
        assert refs == [FieldRef(t, ("t2",))]

    def test_beyond_cis_conservative(self, objs):
        # Paper §4.3.3: lookup(S, s3, normalize(t)) → {t.t3, t.t4}.
        t = objs.global_var("t", T_CIS)
        cis = CommonInitialSequence()
        refs, info = cis.lookup(S_CIS, ("s3",), FieldRef(t, ("t1",)))
        assert set(refs) == {FieldRef(t, ("t3",)), FieldRef(t, ("t4",))}
        assert info.mismatch

    def test_nested_first_field_cis(self, objs):
        # commonInitialSeq must look through enclosing structs whose
        # innermost first field is the target (δ search).
        t = objs.global_var("t", T_NEST)
        cis = CommonInitialSequence()
        # S2 shares an initial int with struct S (t.t1's type).
        S2 = mk("S2", ("a", int_t), ("b", double_t))
        refs, _ = cis.lookup(S2, ("a",), FieldRef(t, ("t1", "s1")))
        assert refs == [FieldRef(t, ("t1", "s1"))]

    def test_no_cis_falls_back_to_suffix(self, objs):
        A = mk("A", ("x", ptr(char)))
        t = objs.global_var("t", T_CIS)
        cis = CommonInitialSequence()
        refs, info = cis.lookup(A, ("x",), FieldRef(t, ("t2",)))
        assert set(refs) == {
            FieldRef(t, ("t2",)), FieldRef(t, ("t3",)), FieldRef(t, ("t4",))
        }
        assert info.mismatch


class TestOffsets:
    def test_normalize_offsets(self, objs):
        t = objs.global_var("t", T_NEST)
        off = Offsets(Layout(ILP32))
        assert off.normalize(FieldRef(t, ())) == OffsetRef(t, 0)
        assert off.normalize(FieldRef(t, ("t1", "s2"))) == OffsetRef(t, 4)
        assert off.normalize(FieldRef(t, ("t2",))) == OffsetRef(t, 8)

    def test_lookup_is_pure_arithmetic(self, objs):
        t = objs.global_var("t", T_NEST)
        off = Offsets(Layout(ILP32))
        refs, info = off.lookup(S_SMALL, ("s2",), OffsetRef(t, 8))
        assert refs == [OffsetRef(t, 12)]
        assert not info.mismatch

    def test_lookup_out_of_bounds_dropped(self, objs):
        x = objs.global_var("x", int_t)
        off = Offsets(Layout(ILP32))
        refs, _ = off.lookup(T_NEST, ("t3",), OffsetRef(x, 0))
        assert refs == []

    def test_resolve_returns_window(self, objs):
        a = objs.global_var("a", S_CIS)
        b = objs.global_var("b", T_CIS)
        off = Offsets(Layout(ILP32))
        res, info = off.resolve(OffsetRef(a, 0), OffsetRef(b, 0), S_CIS)
        assert isinstance(res, Window)
        assert res.size == 12  # sizeof(struct Scis) under ILP32

    def test_canon_ref_folds_arrays(self, objs):
        E = mk("E", ("x", int_t), ("y", int_t))
        holder = mk("Holder", ("arr", array_of(E, 4)))
        h = objs.global_var("h", holder)
        off = Offsets(Layout(ILP32))
        # arr[2].y at offset 20 folds to arr[0].y at offset 4.
        assert off.canon_offset_ref(OffsetRef(h, 20)) == OffsetRef(h, 4)

    def test_canon_ref_out_of_bounds_none(self, objs):
        x = objs.global_var("x", int_t)
        off = Offsets(Layout(ILP32))
        assert off.canon_offset_ref(OffsetRef(x, 4)) is None
        assert off.canon_offset_ref(OffsetRef(x, -1)) is None

    def test_abi_dependence(self, objs):
        # The whole point of non-portability: offsets differ across ABIs.
        P = mk("P", ("p", ptr(char)), ("i", int_t))
        a32 = Offsets(Layout(ILP32))
        a64 = Offsets(Layout(LP64))
        o = objs.global_var("o", P)
        assert a32.normalize(FieldRef(o, ("i",))) == OffsetRef(o, 4)
        assert a64.normalize(FieldRef(o, ("i",))) == OffsetRef(o, 8)


class TestAllRefs:
    def test_collapse_always_single(self, objs):
        t = objs.global_var("t", T_NEST)
        assert CollapseAlways().all_refs(t) == [FieldRef(t, ())]

    def test_coc_all_positions(self, objs):
        t = objs.global_var("t", T_NEST)
        refs = CollapseOnCast().all_refs(t)
        assert FieldRef(t, ("t1", "s1")) in refs
        assert FieldRef(t, ("t3",)) in refs
        assert len(refs) == 4

    def test_offsets_subfields(self, objs):
        t = objs.global_var("t", T_NEST)
        refs = Offsets(Layout(ILP32)).all_refs(t)
        assert OffsetRef(t, 0) in refs and OffsetRef(t, 8) in refs
