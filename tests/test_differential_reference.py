"""Differential test: interned/bitset engine vs. the reference solver.

The optimised engine (``repro.core.engine``) interns refs to dense IDs,
stores points-to sets as big-int bitsets, and collapses copy-edge cycles
online.  None of that may change the analysis: on any program and any
strategy it must compute exactly the same points-to relation as the
retained reference implementation (``repro.core.reference``), which uses
plain dict-of-frozenset storage and no collapsing.

This file checks that on a swarm of seeded generator programs covering
structures, casting, common initial sequences, copies, and calls.
"""

from __future__ import annotations

import pytest

from repro import (
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    Offsets,
    analyze,
    program_from_c,
)
from repro.core.reference import reference_analyze
from repro.suite.generator import GenConfig, generate_program

STRATEGIES = (CollapseAlways, CollapseOnCast, CommonInitialSequence, Offsets)

#: Stats fields that legitimately differ between the two engines:
#: timings, and the collapse counters the reference solver never bumps.
_ENGINE_ONLY = {
    "solve_seconds", "sccs_collapsed", "props_saved",
    "backend", "dense_rounds", "frontier_bits_suppressed",
}

SEEDS = list(range(50))


def _comparable(stats) -> dict:
    return {k: v for k, v in stats.as_dict().items() if k not in _ENGINE_ONLY}


def _check_identical(program, strategy_cls) -> None:
    strategy = strategy_cls()
    fast = analyze(program, strategy)
    ref = reference_analyze(program, strategy)

    fast_facts = set(fast.facts.all_facts())
    ref_facts = set(ref.facts.all_facts())
    assert fast_facts == ref_facts
    assert fast.facts.edge_count() == ref.facts.edge_count() == len(ref_facts)

    # Every per-ref query must agree too (exercises the bitset decode
    # path rather than just the bulk iterator).
    for src in ref.facts.sources():
        assert fast.facts.points_to(src) == ref.facts.points_to(src)

    # Order-independent instrumentation must match exactly; Figure 3/4/6
    # byte-identity across engines depends on this.
    assert _comparable(fast.stats) == _comparable(ref.stats)


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_program_matches_reference(seed: int) -> None:
    """Each seed runs under one strategy (rotating so all four are hit)."""
    source = generate_program(seed, GenConfig())
    program = program_from_c(source, name=f"gen-{seed}.c")
    _check_identical(program, STRATEGIES[seed % len(STRATEGIES)])


@pytest.mark.parametrize("strategy_cls", STRATEGIES, ids=lambda s: s.key)
def test_cast_heavy_seed_matches_reference_all_strategies(strategy_cls) -> None:
    """One cast-heavy program cross-checked under every strategy."""
    cfg = GenConfig(cast_probability=0.8, n_statements=60)
    source = generate_program(1234, cfg)
    program = program_from_c(source, name="gen-cast-heavy.c")
    _check_identical(program, strategy_cls)


def test_collapse_does_not_change_facts() -> None:
    """A hand-written copy cycle: the collapsed engine must report the
    same relation while actually collapsing (sccs_collapsed > 0)."""
    source = """
    struct S { int *p; int *q; };
    int x;
    struct S a, b, c;
    void main(void) {
        a.p = &x;
        b = a; a = c; c = b;   /* copy cycle a -> b -> c -> a */
    }
    """
    program = program_from_c(source, name="cycle.c")
    strategy = CommonInitialSequence()
    fast = analyze(program, strategy)
    ref = reference_analyze(program, strategy)
    assert set(fast.facts.all_facts()) == set(ref.facts.all_facts())
    assert fast.stats.sccs_collapsed > 0
