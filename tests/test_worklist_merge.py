"""Worklist vs. mid-drain class merges: no bits dropped, none twice.

A cycle collapse (:meth:`ConstraintGraph.merge_classes`) can run while
a drain is mid-batch: the merge steals the absorbed class's pending
delta and re-enqueues it — plus the fresh set difference — on the
survivor.  The worklist's pop must then hand every one of those bits
out exactly once, regardless of which heap/queue entries were pushed
under which (possibly now-stale) representative.  These tests pin the
interleavings directly on the worklist structures, then end-to-end
through every propagation backend.

Regression: ``pop`` used to consume pending deltas only under the
*resolved* representative (``pending.pop(find(raw))``), so a delta
enqueued under a non-representative ID was stranded forever — its heap
entry resolved to the rep, whose pending slot was empty, and the raw
slot was never popped.
"""

from __future__ import annotations

import pytest

from repro import CommonInitialSequence, analyze, program_from_c
from repro.core.backend import BACKENDS
from repro.core.facts import FactBase
from repro.core.graph import ConstraintGraph
from repro.core.reference import reference_analyze
from repro.core.worklist import WORKLISTS, FifoWorklist, PriorityWorklist
from repro.ir.objects import AbstractObject, ObjKind
from repro.ir.refs import FieldRef


def _interned_facts(n: int = 6):
    """A FactBase with ``n`` interned scalar refs (IDs 0..n-1)."""
    facts = FactBase()
    for i in range(n):
        obj = AbstractObject(name=f"v{i}", type=None, kind=ObjKind.GLOBAL)
        rid = facts.intern(FieldRef(obj, ()))
        assert rid == i
    return facts


@pytest.mark.parametrize("wl_cls", [PriorityWorklist, FifoWorklist],
                         ids=["priority", "fifo"])
class TestStrandedDelta:
    def test_enqueue_under_non_rep_is_not_stranded(self, wl_cls) -> None:
        """A delta keyed by a merged-away ID must still be popped."""
        facts = _interned_facts()
        rep, dead, _gain, _fresh = facts.union(0, 1)
        wl = wl_cls()
        wl.enqueue(dead, 0b101)          # enqueue under the NON-rep id
        assert wl.pop(facts.find) == (rep, 0b101)
        assert wl.pop(facts.find) is None

    def test_raw_and_rep_pendings_all_reach_the_rep(self, wl_cls) -> None:
        """After a merge leaves entries under both old ids, every bit is
        delivered to the surviving rep exactly once (batching may vary)."""
        facts = _interned_facts()
        wl = wl_cls()
        wl.enqueue(0, 0b001)
        wl.enqueue(1, 0b010)
        rep, _dead, _gain, _fresh = facts.union(0, 1)
        # Simulate a merge that did NOT steal (the regression scenario):
        # both pendings survive, keyed by the old ids.
        seen = 0
        total_bits = 0
        while (item := wl.pop(facts.find)) is not None:
            got_rep, delta = item
            assert got_rep == rep
            assert delta
            total_bits += delta.bit_count()
            seen |= delta
        assert seen == 0b011
        assert total_bits == 2          # nothing dropped, nothing twice

    def test_steal_removes_pending(self, wl_cls) -> None:
        facts = _interned_facts()
        wl = wl_cls()
        wl.enqueue(2, 0b100)
        assert wl.steal(2) == 0b100
        assert wl.steal(2) == 0
        assert wl.pop(facts.find) is None


@pytest.mark.parametrize("wl_key", sorted(WORKLISTS))
def test_merge_during_drain_delivers_union_once(wl_key) -> None:
    """Scripted mid-drain merge: the survivor's next pop carries the
    stolen delta plus the fresh set difference, exactly once."""
    facts = _interned_facts(8)
    graph = ConstraintGraph(facts)
    wl = WORKLISTS[wl_key]()
    gains: list = []

    # Two enqueued classes with distinct points-to sets and pending work.
    facts.add_bits(0, 0b0011)
    facts.add_bits(1, 0b1100)
    wl.enqueue(0, 0b0011)
    wl.enqueue(1, 0b1100)

    # Drain starts: pop the first batch (class 0), then a collapse
    # merges class 1 into it mid-batch.
    first = wl.pop(facts.find)
    assert first is not None
    rep0, delta0 = first
    assert delta0 == 0b0011
    assert graph.merge_classes([rep0, 1], wl, gains.append)
    rep = facts.find(rep0)

    # The merged class's pending must now be: class 1's stolen delta
    # plus the fresh difference each side gained (0's bits are new to 1
    # and vice versa) — delivered in ONE batch, with nothing left over.
    item = wl.pop(facts.find)
    assert item is not None
    got_rep, got_delta = item
    assert got_rep == rep
    assert got_delta == 0b1111
    assert wl.pop(facts.find) is None
    # The union accounted the logical-fact gain through the chokepoint.
    assert sum(gains) > 0
    assert facts.pts_bits(rep) == 0b1111


_CYCLE_SRC = """
struct S { int *p; int *q; };
int x, y;
struct S a, b, c;
void main(void) {
    int **pp;
    a.p = &x;
    b = a; a = c; c = b;   /* copy cycle a -> b -> c -> a */
    pp = &b.q; *pp = &y;   /* keep propagating into the merged class */
}
"""


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("wl_key", sorted(WORKLISTS))
def test_collapse_program_end_to_end(wl_key, backend) -> None:
    """A collapsing program reaches the reference fixpoint under every
    (worklist, backend) combination, while actually collapsing."""
    program = program_from_c(_CYCLE_SRC, name="cycle.c")
    strategy = CommonInitialSequence()
    ref = reference_analyze(program, strategy)
    res = analyze(program, strategy, worklist=wl_key, backend=backend)
    assert set(res.facts.all_facts()) == set(ref.facts.all_facts())
    assert res.stats.sccs_collapsed > 0
