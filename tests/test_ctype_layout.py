"""Unit tests for the layout engine (sizeof / offsetof / canonicalization)."""

import pytest

from repro.ctype.layout import ILP32, LP64, Layout, LayoutError
from repro.ctype.types import (
    Field,
    StructType,
    UnionType,
    array_of,
    char,
    double_t,
    func,
    int_t,
    longlong,
    ptr,
    short,
    void,
)


@pytest.fixture
def lay32():
    return Layout(ILP32)


@pytest.fixture
def lay64():
    return Layout(LP64)


def S(tag, *fields):
    return StructType(tag).define([Field(n, t) for n, t in fields])


class TestSizeof:
    def test_scalars_ilp32(self, lay32):
        assert lay32.sizeof(char) == 1
        assert lay32.sizeof(short) == 2
        assert lay32.sizeof(int_t) == 4
        assert lay32.sizeof(longlong) == 8
        assert lay32.sizeof(double_t) == 8
        assert lay32.sizeof(ptr(int_t)) == 4

    def test_pointer_differs_by_abi(self, lay32, lay64):
        assert lay32.sizeof(ptr(char)) == 4
        assert lay64.sizeof(ptr(char)) == 8

    def test_array(self, lay32):
        assert lay32.sizeof(array_of(int_t, 10)) == 40
        assert lay32.sizeof(array_of(char, 3)) == 3
        # Incomplete arrays are one representative element.
        assert lay32.sizeof(array_of(int_t)) == 4

    def test_struct_padding(self, lay32):
        s = S("P", ("c", char), ("i", int_t))
        assert lay32.field_offset(s, "c") == 0
        assert lay32.field_offset(s, "i") == 4
        assert lay32.sizeof(s) == 8

    def test_struct_tail_padding(self, lay32):
        s = S("T", ("i", int_t), ("c", char))
        assert lay32.sizeof(s) == 8  # padded to int alignment

    def test_union_size_is_max(self, lay32):
        u = UnionType("U").define([Field("i", int_t), Field("d", double_t)])
        assert lay32.sizeof(u) == 8
        assert lay32.field_offset(u, "i") == 0
        assert lay32.field_offset(u, "d") == 0

    def test_incomplete_struct_raises(self, lay32):
        with pytest.raises(LayoutError):
            lay32.sizeof(StructType("Fwd"))

    def test_void_sizeof_one(self, lay32):
        assert lay32.sizeof(void) == 1

    def test_function_sizeof(self, lay32):
        assert lay32.sizeof(func(void)) == 1


class TestOffsetof:
    def test_nested(self, lay32):
        inner = S("I", ("a", int_t), ("b", int_t))
        outer = S("O", ("x", char), ("i", inner), ("y", int_t))
        assert lay32.offsetof(outer, ("i",)) == 4
        assert lay32.offsetof(outer, ("i", "b")) == 8
        assert lay32.offsetof(outer, ("y",)) == 12

    def test_array_entered_at_zero(self, lay32):
        inner = S("E", ("a", int_t), ("b", int_t))
        outer = S("AO", ("arr", array_of(inner, 5)), ("tail", int_t))
        assert lay32.offsetof(outer, ("arr", "b")) == 4
        assert lay32.offsetof(outer, ("tail",)) == 40

    def test_empty_path(self, lay32):
        s = S("Z", ("a", int_t))
        assert lay32.offsetof(s, ()) == 0

    def test_type_at_path(self, lay32):
        inner = S("I2", ("a", int_t))
        outer = S("O2", ("i", inner))
        assert lay32.type_at_path(outer, ("i", "a")) is int_t

    def test_non_record_path_raises(self, lay32):
        with pytest.raises(LayoutError):
            lay32.offsetof(int_t, ("a",))


class TestCanonicalOffset:
    def test_plain_struct_identity(self, lay32):
        s = S("C1", ("a", int_t), ("b", int_t))
        assert lay32.canonical_offset(s, 4) == 4

    def test_array_folding(self, lay32):
        arr = array_of(int_t, 8)
        # Offset 12 is element 3, folded to element 0.
        assert lay32.canonical_offset(arr, 12) == 0

    def test_array_of_structs_folding(self, lay32):
        e = S("C2", ("x", int_t), ("y", int_t))
        arr = array_of(e, 4)
        # Element 2's y field (off 20) folds to representative's y (off 4).
        assert lay32.canonical_offset(arr, 20) == 4

    def test_struct_containing_array(self, lay32):
        e = S("C3", ("x", int_t), ("y", int_t))
        outer = S("C4", ("hdr", int_t), ("body", array_of(e, 3)), ("tail", int_t))
        # body[1].y is at 4 + 8 + 4 = 16 -> folds to body[0].y at 8.
        assert lay32.canonical_offset(outer, 16) == 8
        # tail (off 28) is untouched.
        assert lay32.canonical_offset(outer, 28) == 28

    def test_negative_clamped(self, lay32):
        assert lay32.canonical_offset(int_t, -3) == 0

    def test_union_member_canonicalized(self, lay32):
        inner = S("C5", ("a", int_t), ("b", int_t))
        u = UnionType("CU").define([Field("s", inner), Field("i", int_t)])
        assert lay32.canonical_offset(u, 4) == 4  # within first member


class TestSubfieldOffsets:
    def test_flat(self, lay32):
        s = S("F1", ("a", int_t), ("b", int_t))
        assert lay32.subfield_offsets(s) == [0, 4]

    def test_nested_and_array(self, lay32):
        inner = S("F2", ("x", int_t), ("y", int_t))
        outer = S("F3", ("h", int_t), ("arr", array_of(inner, 4)), ("t", char))
        # h@0, arr@4 (rep elem x@4, y@8), t@36
        assert lay32.subfield_offsets(outer) == [0, 4, 8, 36]

    def test_scalar(self, lay32):
        assert lay32.subfield_offsets(int_t) == [0]


class TestOffsetToPath:
    def test_exact_field(self, lay32):
        inner = S("P1", ("x", int_t), ("y", int_t))
        outer = S("P2", ("h", char), ("i", inner))
        assert lay32.offset_to_path(outer, 8) == ("i", "y")
        assert lay32.offset_to_path(outer, 0) == ()

    def test_padding_returns_none(self, lay32):
        s = S("P3", ("c", char), ("i", int_t))
        assert lay32.offset_to_path(s, 2) is None  # padding byte


class TestBitfields:
    def test_bitfields_share_storage(self, lay32):
        s = StructType("B").define(
            [
                Field("a", int_t, bit_width=3),
                Field("b", int_t, bit_width=5),
                Field("c", int_t),
            ]
        )
        assert lay32.field_offset(s, "a") == 0
        assert lay32.field_offset(s, "b") == 0
        assert lay32.field_offset(s, "c") == 4
        assert lay32.sizeof(s) == 8
