"""Every script under ``examples/`` must run end to end.

The examples are the repo's executable tutorial: each has a no-argument
default (a bundled suite program) so it can run unattended.  These tests
execute each one in a subprocess exactly as a reader would — from the
repository root with ``PYTHONPATH=src`` — and require a zero exit status
and non-empty output.  A broken import, a renamed API, or a stale
assumption in an example fails CI instead of a reader's first session.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def _run(script: Path, *argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(script), *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_directory_is_nonempty():
    assert EXAMPLE_SCRIPTS, "no scripts found under examples/"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = _run(script)
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_example_accepts_suite_program_argument():
    """The argument path works too, not just the default."""
    proc = _run(EXAMPLES_DIR / "compare_strategies.py", "anagram")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()
