"""Tests for the Steensgaard and Andersen baselines, including the
differential check Andersen ≡ framework-with-Collapse-Always."""

import pytest

from repro import CollapseAlways, analyze
from repro.baselines import andersen, steensgaard
from repro.frontend import program_from_c
from repro.ir.objects import ObjKind


def prog(src):
    return program_from_c(src)


BASIC = """
int x, y, *p, *q;
void main(void) {
    p = &x;
    q = &y;
}
"""

FLOW = """
int x, *p, *q;
void main(void) {
    p = &x;
    q = p;
}
"""

DEREF = """
int x, *p, **pp, *out;
void main(void) {
    p = &x;
    pp = &p;
    out = *pp;
}
"""


class TestSteensgaard:
    def test_distinct_pointers_not_merged(self):
        r = steensgaard(prog(BASIC))
        p = r.program.objects.lookup("p")
        q = r.program.objects.lookup("q")
        assert r.points_to_names(p) == {"x"}
        assert r.points_to_names(q) == {"y"}
        assert not r.may_alias(p, q)

    def test_copy_unifies(self):
        r = steensgaard(prog(FLOW))
        p = r.program.objects.lookup("p")
        q = r.program.objects.lookup("q")
        assert r.may_alias(p, q)
        assert r.points_to_names(q) == {"x"}

    def test_unification_imprecision(self):
        # The hallmark of Steensgaard: assigning both &x and &y to the
        # same pointer merges x and y into one class, polluting p2.
        src = """
        int x, y, *p, *p2;
        void main(void) {
            p = &x;
            p = &y;
            p2 = &x;
        }
        """
        r = steensgaard(prog(src))
        p2 = r.program.objects.lookup("p2")
        assert r.points_to_names(p2) == {"x", "y"}

    def test_load_store(self):
        r = steensgaard(prog(DEREF))
        out = r.program.objects.lookup("out")
        assert "x" in r.points_to_names(out)

    def test_interprocedural(self):
        src = """
        int *g, x;
        void f(int *p) { g = p; }
        void main(void) { f(&x); }
        """
        r = steensgaard(prog(src))
        g = r.program.objects.lookup("g")
        assert r.points_to_names(g) == {"x"}

    def test_function_pointer_call(self):
        src = """
        int *g, x;
        void f(int *p) { g = p; }
        void main(void) { void (*fp)(int*) = f; fp(&x); }
        """
        r = steensgaard(prog(src))
        g = r.program.objects.lookup("g")
        assert r.points_to_names(g) == {"x"}

    def test_class_count_positive(self):
        r = steensgaard(prog(BASIC))
        assert r.class_count() > 0

    def test_no_facts_for_untouched(self):
        src = "int z; int *p; void main(void) { }"
        r = steensgaard(prog(src))
        p = r.program.objects.lookup("p")
        assert r.points_to_names(p) == set()


class TestAndersen:
    def test_basic(self):
        r = andersen(prog(BASIC))
        assert r.points_to_names(r.program.objects.lookup("p")) == {"x"}
        assert r.points_to_names(r.program.objects.lookup("q")) == {"y"}

    def test_inclusion_not_unification(self):
        # Unlike Steensgaard, p = &x; p = &y; p2 = &x keeps p2 exact.
        src = """
        int x, y, *p, *p2;
        void main(void) { p = &x; p = &y; p2 = &x; }
        """
        r = andersen(prog(src))
        assert r.points_to_names(r.program.objects.lookup("p2")) == {"x"}

    def test_deref_chain(self):
        r = andersen(prog(DEREF))
        assert "x" in r.points_to_names(r.program.objects.lookup("out"))

    def test_edge_count(self):
        r = andersen(prog(BASIC))
        assert r.edge_count() >= 2


DIFFERENTIAL_PROGRAMS = [
    BASIC,
    FLOW,
    DEREF,
    """
    struct S { int *a; int *b; } s;
    int x, y, *p;
    void main(void) { s.a = &x; s.b = &y; p = s.a; }
    """,
    """
    struct N { struct N *next; int *v; };
    int x;
    void main(void) {
        struct N *n = (struct N*)malloc(sizeof(struct N));
        n->next = n;
        n->v = &x;
    }
    """,
    """
    int x, *g;
    int *id(int *p) { return p; }
    void main(void) { g = id(&x); }
    """,
    """
    int x, *g;
    void cb(int *p) { g = p; }
    void main(void) { void (*fp)(int*) = cb; fp(&x); }
    """,
    """
    int a, b;
    int *arr[4];
    int **pp, *o;
    void main(void) {
        arr[0] = &a;
        arr[3] = &b;
        pp = &arr[1];
        o = *pp;
    }
    """,
]


class TestDifferentialAndersenVsCollapseAlways:
    """The standalone Andersen baseline and the framework's Collapse
    Always instance implement the same abstraction: their object-level
    points-to relations must be identical."""

    @pytest.mark.parametrize("src", DIFFERENTIAL_PROGRAMS)
    def test_same_object_relation(self, src):
        program = prog(src)
        base = andersen(program)
        res = analyze(program, CollapseAlways())
        for obj in program.objects.all_objects():
            if obj.kind in (ObjKind.FUNCTION,):
                continue
            got = res.points_to_names(obj)
            want = base.points_to_names(obj)
            assert got == want, f"{obj.name}: engine={got} baseline={want}"

    @pytest.mark.parametrize("src", DIFFERENTIAL_PROGRAMS)
    def test_steensgaard_at_least_as_coarse(self, src):
        # Steensgaard over-approximates Andersen: every Andersen pointee
        # must appear in the Steensgaard class.
        program = prog(src)
        fine = andersen(program)
        coarse = steensgaard(program)
        for obj in program.objects.all_objects():
            f = fine.points_to_names(obj)
            c = coarse.points_to_names(obj)
            assert f <= c, f"{obj.name}: andersen={f} steensgaard={c}"
