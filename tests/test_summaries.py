"""Unit tests for the library-summary registry (repro.core.interproc)."""

from conftest import pts_names, run

from repro import CollapseOnCast, CommonInitialSequence
from repro.core.engine import Engine
from repro.core.interproc import SummaryRegistry
from repro.frontend import program_from_c


class TestRegistryMechanics:
    def test_register_and_apply(self):
        src = """
        extern int *frob(int *p);
        int x, *r;
        void main(void) { r = frob(&x); }
        """
        program = program_from_c(src)
        engine = Engine(program, CollapseOnCast())
        calls = []

        def spy(eng, call):
            calls.append(call)

        engine.summaries = SummaryRegistry()
        engine.summaries.register("frob", spy)
        engine.solve()
        assert len(calls) == 1
        assert calls[0].callee.name == "frob"

    def test_default_for_unknown(self):
        r = run(
            """
            extern char *mystery(char *a, char *b);
            char b1[4], b2[4], *out;
            void main(void) { out = mystery(b1, b2); }
            """,
            CollapseOnCast(),
        )
        assert pts_names(r, "out") == ["b1", "b2"]

    def test_defined_function_shadows_summary(self):
        # A function defined in the program must be analyzed, not
        # summarized, even if it shares a libc name.
        src = """
        int x, *g;
        char *strcpy(char *d, char *s) { g = &x; return d; }
        char buf[4];
        void main(void) { strcpy(buf, "a"); }
        """
        r = run(src, CollapseOnCast())
        assert pts_names(r, "g") == ["x"]


class TestStockSummaries:
    def test_strcat_returns_dst(self):
        r = run(
            'char a[8], *r; void main(void) { r = strcat(a, "x"); }',
            CommonInitialSequence(),
        )
        assert pts_names(r, "r") == ["a"]

    def test_strtok_returns_arg(self):
        r = run(
            'char a[8], *r; void main(void) { r = strtok(a, ","); }',
            CommonInitialSequence(),
        )
        assert pts_names(r, "r") == ["a"]

    def test_free_no_effect(self):
        r = run(
            "int *p; void main(void) { p = (int*)malloc(4); free(p); }",
            CommonInitialSequence(),
        )
        assert len(pts_names(r, "p")) == 1

    def test_bsearch_result_points_into_base(self):
        src = """
        int cmp(void *a, void *b) { return 0; }
        int arr[8], key, *hit;
        void main(void) {
            hit = (int *)bsearch(&key, arr, 8, sizeof(int), cmp);
        }
        """
        r = run(src, CommonInitialSequence())
        assert "arr" in pts_names(r, "hit")

    def test_bsearch_callback_params(self):
        src = """
        int *seen_key, *seen_elem;
        int cmp(void *a, void *b) {
            seen_key = (int *)a;
            seen_elem = (int *)b;
            return 0;
        }
        int arr[8], key;
        void main(void) {
            bsearch(&key, arr, 8, sizeof(int), cmp);
        }
        """
        r = run(src, CommonInitialSequence())
        assert "key" in pts_names(r, "seen_key")
        assert "arr" in pts_names(r, "seen_elem")

    def test_memmove_like_memcpy(self):
        src = """
        struct S { int *a; } s1, s2;
        int x; int *o;
        void main(void) {
            s1.a = &x;
            memmove(&s2, &s1, sizeof(struct S));
            o = s2.a;
        }
        """
        r = run(src, CommonInitialSequence())
        assert pts_names(r, "o") == ["x"]

    def test_memcpy_returns_dst(self):
        src = """
        struct S { int a; } s1, s2;
        struct S *r;
        void main(void) { r = (struct S*)memcpy(&s2, &s1, sizeof(struct S)); }
        """
        r = run(src, CommonInitialSequence())
        assert pts_names(r, "r") == ["s2"]

    def test_fgets_returns_buffer(self):
        src = """
        char line[64], *got;
        void main(void) {
            FILE *f = fopen("x", "r");
            got = fgets(line, 64, f);
        }
        """
        r = run(src, CommonInitialSequence())
        assert pts_names(r, "got") == ["line"]
