"""Tests of the C → five-forms normalization."""


from repro.ctype.types import PointerType, StructType
from repro.frontend import program_from_c
from repro.ir.objects import ObjKind
from repro.ir.stmts import AddrOf, Call, Copy, FieldAddr, Load, PtrArith, Store


def stmts_of(src, fn="main"):
    prog = program_from_c(src)
    return prog, prog.functions[fn].stmts


def kinds(stmts):
    return [type(s).__name__ for s in stmts]


class TestBasicForms:
    def test_form1_address_of(self):
        prog, sts = stmts_of("int x, *p; void main(void) { p = &x; }")
        addr = [s for s in sts if isinstance(s, AddrOf)]
        assert len(addr) == 1
        assert addr[0].target.obj.name == "x"
        assert addr[0].lhs.name.endswith("%t1")
        copies = [s for s in sts if isinstance(s, Copy)]
        assert copies[-1].lhs.name == "p"

    def test_form1_field(self):
        prog, sts = stmts_of(
            "struct S { int a; int b; } s; int *p;"
            "void main(void) { p = &s.b; }"
        )
        addr = [s for s in sts if isinstance(s, AddrOf)][0]
        assert addr.target.path == ("b",)

    def test_form2_field_through_pointer(self):
        prog, sts = stmts_of(
            "struct S { int a; int b; } *p; int *q;"
            "void main(void) { q = &p->b; }"
        )
        fa = [s for s in sts if isinstance(s, FieldAddr)]
        assert len(fa) == 1
        assert fa[0].path == ("b",)
        assert not fa[0].synthetic

    def test_form3_copy(self):
        prog, sts = stmts_of("int a, b; void main(void) { a = b; }")
        assert kinds(sts) == ["Copy"]

    def test_form4_load(self):
        prog, sts = stmts_of("int *p, x; void main(void) { x = *p; }")
        loads = [s for s in sts if isinstance(s, Load)]
        assert len(loads) == 1
        assert loads[0].ptr.name == "p"
        assert not loads[0].synthetic

    def test_form5_store(self):
        prog, sts = stmts_of("int *p, x; void main(void) { *p = x; }")
        stores = [s for s in sts if isinstance(s, Store)]
        assert len(stores) == 1
        assert stores[0].ptr.name == "p"
        assert not stores[0].synthetic

    def test_field_write_lowered_through_store(self):
        # s.a = x must become tmp = &s.a; *tmp = x (both synthetic).
        prog, sts = stmts_of(
            "struct S { int a; } s; int x; void main(void) { s.a = x; }"
        )
        assert kinds(sts) == ["AddrOf", "Store"]
        assert all(s.synthetic for s in sts)

    def test_arrow_field_write(self):
        prog, sts = stmts_of(
            "struct S { int a; int b; } *p; int x;"
            "void main(void) { p->b = x; }"
        )
        fa = [s for s in sts if isinstance(s, FieldAddr)]
        st = [s for s in sts if isinstance(s, Store)]
        assert len(fa) == 1 and not fa[0].synthetic
        assert len(st) == 1 and st[0].synthetic


class TestCasts:
    def test_cast_produces_typed_temp(self):
        prog, sts = stmts_of(
            "struct S { int a; } *p; char *c; void main(void) { p = (struct S*)c; }"
        )
        copies = [s for s in sts if isinstance(s, Copy)]
        # c -> temp(struct S*) -> p
        cast_tmp = copies[0].lhs
        assert isinstance(cast_tmp.type, PointerType)
        assert isinstance(cast_tmp.type.pointee, StructType)

    def test_compatible_cast_elided(self):
        prog, sts = stmts_of("int *p, *q; void main(void) { p = (int*)q; }")
        assert kinds(sts) == ["Copy"]  # no intermediate temp


class TestArrays:
    def test_index_on_array_collapsed(self):
        prog, sts = stmts_of(
            "int *a[10]; int x; void main(void) { a[3] = &x; }"
        )
        # No PtrArith: a[3] is the representative element.
        assert not any(isinstance(s, PtrArith) for s in sts)

    def test_index_through_pointer_is_arith(self):
        prog, sts = stmts_of(
            "int **p; int x; void main(void) { p[2] = &x; }"
        )
        assert any(isinstance(s, PtrArith) for s in sts)

    def test_index_zero_through_pointer_no_arith(self):
        prog, sts = stmts_of(
            "int **p; int x; void main(void) { p[0] = &x; }"
        )
        assert not any(isinstance(s, PtrArith) for s in sts)

    def test_array_decays_in_value_position(self):
        prog, sts = stmts_of("int a[4]; int *p; void main(void) { p = a; }")
        addr = [s for s in sts if isinstance(s, AddrOf)]
        assert len(addr) == 1
        assert addr[0].target.obj.name == "a"


class TestHeap:
    def test_malloc_rewritten_to_alloc_site(self):
        prog, sts = stmts_of(
            "struct S { int *f; } *p;"
            "void main(void) { p = (struct S*)malloc(sizeof(struct S)); }"
        )
        assert not any(isinstance(s, Call) for s in sts)
        addr = [s for s in sts if isinstance(s, AddrOf)][0]
        heap = addr.target.obj
        assert heap.kind is ObjKind.HEAP
        assert isinstance(heap.type, StructType)

    def test_malloc_type_from_destination(self):
        prog, sts = stmts_of(
            "struct S { int *f; } *p;"
            "void main(void) { p = malloc(sizeof(struct S)); }"
        )
        heap = [s for s in sts if isinstance(s, AddrOf)][0].target.obj
        assert isinstance(heap.type, StructType)

    def test_malloc_type_from_sizeof_when_no_hint(self):
        prog, sts = stmts_of(
            "struct S { int *f; } s;"
            "void main(void) { void *v = malloc(sizeof(struct S)); }"
        )
        heap = [s for s in sts if isinstance(s, AddrOf)][0].target.obj
        assert isinstance(heap.type, StructType)

    def test_calloc_array_type(self):
        prog, sts = stmts_of(
            "void main(void) { int *a = calloc(10, sizeof(int)); }"
        )
        heap = [s for s in sts if isinstance(s, AddrOf)][0].target.obj
        # Destination hint gives int; either int or int[] is acceptable.
        assert "int" in repr(heap.type)

    def test_distinct_allocation_sites(self):
        prog, sts = stmts_of(
            "void main(void) { int *a = malloc(4); int *b = malloc(4); }"
        )
        heaps = {s.target.obj.name for s in sts if isinstance(s, AddrOf)}
        assert len(heaps) == 2

    def test_realloc_keeps_old_block(self):
        prog, sts = stmts_of(
            "void main(void) { int *a = malloc(4); a = realloc(a, 8); }"
        )
        heaps = [s.target.obj for s in sts if isinstance(s, AddrOf)]
        assert len(heaps) == 2  # old site + realloc site


class TestCalls:
    def test_direct_call(self):
        prog = program_from_c(
            "int f(int x) { return x; } void main(void) { int y = f(3); }"
        )
        calls = [s for s in prog.functions["main"].stmts if isinstance(s, Call)]
        assert len(calls) == 1
        assert not calls[0].indirect
        assert calls[0].callee.name == "f"

    def test_indirect_call(self):
        prog = program_from_c(
            "int f(int x) { return x; }"
            "void main(void) { int (*fp)(int) = f; int y = fp(3); }"
        )
        calls = [s for s in prog.functions["main"].stmts if isinstance(s, Call)]
        assert calls[0].indirect

    def test_star_fp_call(self):
        prog = program_from_c(
            "int f(int x) { return x; }"
            "void main(void) { int (*fp)(int) = f; int y = (*fp)(3); }"
        )
        calls = [s for s in prog.functions["main"].stmts if isinstance(s, Call)]
        assert calls[0].indirect

    def test_return_flows_to_retval(self):
        prog = program_from_c("int *f(int *p) { return p; }")
        f = prog.functions["f"]
        assert f.retval is not None
        copies = [s for s in f.stmts if isinstance(s, Copy)]
        assert copies[-1].lhs is f.retval

    def test_implicit_declaration(self):
        prog = program_from_c("void main(void) { mystery(1); }")
        calls = [s for s in prog.functions["main"].stmts if isinstance(s, Call)]
        assert calls[0].callee.name == "mystery"


class TestScoping:
    def test_shadowing_creates_distinct_objects(self):
        prog = program_from_c(
            "int x; void main(void) { int x; { int x; } }"
        )
        names = [o.name for o in prog.program_objects()] if hasattr(
            prog, "program_objects") else [o.name for o in prog.objects.all_objects()]
        assert "x" in names
        assert "main::x" in names
        assert "main::x.1" in names

    def test_for_scope(self):
        prog = program_from_c(
            "void main(void) { for (int i = 0; i < 3; i++) { int j = i; } }"
        )
        assert "main::i" in [o.name for o in prog.objects.all_objects()]


class TestInitializers:
    def test_struct_initializer(self):
        prog = program_from_c(
            "int x, y; struct S { int *a; int *b; } s = { &x, &y };"
        )
        addrs = [s for s in prog.global_stmts if isinstance(s, AddrOf)
                 and s.target.obj.name in ("x", "y")]
        assert len(addrs) == 2

    def test_designated_initializer(self):
        prog = program_from_c(
            "int x; struct S { int *a; int *b; } s = { .b = &x };"
        )
        stores = [s for s in prog.global_stmts if isinstance(s, (Store,))]
        assert stores  # write into s.b via tmp = &s.b

    def test_array_initializer_collapses(self):
        prog = program_from_c("int x, y; int *a[2] = { &x, &y };")
        # Both element initializers write the representative element of a.
        copies = [s for s in prog.global_stmts if isinstance(s, Copy)
                  and s.lhs.name == "a"]
        assert len(copies) == 2
        addr_targets = {s.target.obj.name for s in prog.global_stmts
                        if isinstance(s, AddrOf)}
        assert {"x", "y"} <= addr_targets

    def test_string_initializer(self):
        prog = program_from_c('char *msg = "hello";')
        addrs = [s for s in prog.global_stmts if isinstance(s, AddrOf)]
        assert any(s.target.obj.kind is ObjKind.STRING for s in addrs)


class TestStatistics:
    def test_deref_stmts_exclude_synthetic(self):
        prog = program_from_c(
            "struct S { int a; } s; int x;"
            "void main(void) { s.a = x; }"  # no source-level deref
        )
        assert list(prog.deref_stmts()) == []

    def test_deref_stmts_include_source_derefs(self):
        prog = program_from_c(
            "int *p, x; void main(void) { x = *p; *p = x; }"
        )
        assert len(list(prog.deref_stmts())) == 2

    def test_stmt_count(self):
        prog = program_from_c("int a, b; void main(void) { a = b; }")
        assert prog.stmt_count() == 1
