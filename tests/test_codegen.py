"""The codegen backend's compile cache, the accel seam, and fail-fast
backend validation.

``tests/test_backends.py`` already pins codegen/accel to the reference
fixpoint across the whole suite matrix; this file covers the machinery
around them:

- generated drain source is syntactically valid (and compiles) for
  every (worklist policy, windows) shape and every strategy instance;
- the content-key cache: engines sharing a (policy, windows) shape
  share one compiled code object — across engines, sessions, and
  incremental re-solves — while differing shapes compile separately;
- the accel seam: a present compiled module (here: the generator's own
  output, interpreted) is used and reported via ``stats.accel_active``,
  an absent or version-stale module falls back to generated Python
  silently and identically;
- backend-name validation fails at session construction / CLI parsing
  with the registered list and availability hints, not deep inside a
  solve.
"""

from __future__ import annotations

import ast
import sys
import types
from heapq import heappop, heappush

import pytest

from repro import CommonInitialSequence, analyze, program_from_c
from repro.core import STRATEGY_BY_KEY
import repro.core.codegen as codegen_mod
from repro.core.codegen import (
    ACCEL_API_VERSION,
    AccelBackend,
    CodegenBackend,
    compiled_drain,
    drain_key,
    generate_drain_source,
)
from repro.core.engine import Engine
from repro.ir.refs import OffsetRef
from repro.session import AnalysisSession

SRC = """
struct S { int *p; int *q; };
int x, y;
struct S a, b;
void main(void) {
    int **pp;
    a.p = &x;
    b = a;
    pp = &a.q; *pp = &y;
}
"""


def _program():
    return program_from_c(SRC, name="codegen.c")


# ---------------------------------------------------------------------------
# Source generation.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("windows", [False, True])
@pytest.mark.parametrize("policy", ["priority", "fifo", "generic"])
def test_generated_source_is_valid_python(policy, windows):
    src = generate_drain_source(policy, windows)
    tree = ast.parse(src)
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef) and fn.name == "drain"
    assert [a.arg for a in fn.args.args] == [
        "eng", "edge_sent", "win_sent", "sub_sent",
    ]
    compile(src, "<test>", "exec")


def test_generated_source_specializes_per_policy():
    assert "heappop" in generate_drain_source("priority", False)
    assert "popleft" in generate_drain_source("fifo", False)
    assert "wl_pop" in generate_drain_source("generic", False)
    assert "windows_get" in generate_drain_source("generic", True)
    assert "windows_get" not in generate_drain_source("generic", False)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown worklist policy"):
        generate_drain_source("lifo", False)


@pytest.mark.parametrize("key", sorted(STRATEGY_BY_KEY))
def test_drain_key_and_source_for_every_strategy(key):
    """Each strategy instance maps to a shape whose source compiles."""
    from repro.core.offsets import Offsets

    eng = Engine(_program(), STRATEGY_BY_KEY[key](), backend="codegen")
    policy, windows = drain_key(eng)
    assert policy == "priority"  # the default worklist
    # Only the Offsets family can install byte windows.
    assert windows == isinstance(eng.strategy, Offsets)
    ast.parse(generate_drain_source(policy, windows))
    assert callable(compiled_drain((policy, windows)))


# ---------------------------------------------------------------------------
# The compile cache.
# ---------------------------------------------------------------------------


def test_same_shape_shares_one_compiled_drain():
    assert compiled_drain(("priority", False)) is compiled_drain(
        ("priority", False)
    )


def test_differing_shapes_compile_separately():
    fns = {
        compiled_drain((policy, windows))
        for policy in ("priority", "fifo", "generic")
        for windows in (False, True)
    }
    assert len(fns) == 6


def test_sessions_with_same_shape_reuse_the_compiled_drain():
    a = AnalysisSession.from_c(SRC, backend="codegen")
    b = AnalysisSession.from_c(SRC, backend="codegen")
    a.solve(CommonInitialSequence())
    b.solve(CommonInitialSequence())
    (eng_a,) = a._engines.values()
    (eng_b,) = b._engines.values()
    assert eng_a.backend._fn is not None
    assert eng_a.backend._fn is eng_b.backend._fn


def test_incremental_resolve_keeps_the_resolved_drain():
    from repro.ir.refs import FieldRef
    from repro.ir.stmts import AddrOf

    session = AnalysisSession.from_c(
        "int x, y, *p;\nvoid main(void) { p = &x; }", backend="codegen"
    )
    res = session.solve(CommonInitialSequence())
    (eng,) = session._engines.values()
    fn = eng.backend._fn
    assert fn is not None
    objs = session.program.objects
    p, y = objs.lookup("p"), objs.lookup("y")
    session.add_statements([AddrOf(p, FieldRef(y, ()))], function="main")
    assert eng.backend._fn is fn
    assert res.points_to_names(p) == {"x", "y"}


def test_worklist_policy_changes_the_specialization():
    prog = _program()
    strat = STRATEGY_BY_KEY["common_initial_sequence"]
    pri = Engine(prog, strat(), backend="codegen", worklist="priority")
    fifo = Engine(prog, strat(), backend="codegen", worklist="fifo")
    base = analyze(prog, strat(), backend="bigint")
    for eng in (pri, fifo):
        res = eng.solve()
        assert set(res.facts.all_facts()) == set(base.facts.all_facts())
    assert pri.backend._fn is not fifo.backend._fn


# ---------------------------------------------------------------------------
# The accel seam.
# ---------------------------------------------------------------------------


@pytest.fixture
def accel_seam():
    """Reset load_accel's probe cache around a test and restore after."""
    saved = (codegen_mod._accel_module, codegen_mod._accel_checked)
    saved_sys = sys.modules.get("repro.core._accel")
    codegen_mod._accel_module = None
    codegen_mod._accel_checked = False
    yield
    codegen_mod._accel_module, codegen_mod._accel_checked = saved
    if saved_sys is None:
        sys.modules.pop("repro.core._accel", None)
    else:
        sys.modules["repro.core._accel"] = saved_sys


def _interpreted_accel_module():
    """What tools/build_accel.py compiles, minus the compiler."""
    ns = {"heappop": heappop, "heappush": heappush, "OffsetRef": OffsetRef}
    exec(compile(generate_drain_source("generic", True), "<test-accel>",
                 "exec"), ns)
    return types.SimpleNamespace(
        ACCEL_API_VERSION=ACCEL_API_VERSION, drain=ns["drain"]
    )


def test_accel_falls_back_to_codegen_when_absent(monkeypatch):
    monkeypatch.setattr(codegen_mod, "load_accel", lambda: None)
    prog = _program()
    base = analyze(prog, CommonInitialSequence(), backend="bigint")
    res = analyze(prog, CommonInitialSequence(), backend="accel")
    assert res.stats.backend == "accel"
    assert res.stats.accel_active == 0
    assert set(res.facts.all_facts()) == set(base.facts.all_facts())


@pytest.mark.parametrize("key", sorted(STRATEGY_BY_KEY))
def test_accel_runs_the_built_module_when_present(monkeypatch, key):
    mod = _interpreted_accel_module()
    monkeypatch.setattr(codegen_mod, "load_accel", lambda: mod)
    prog = _program()
    strat_cls = STRATEGY_BY_KEY[key]
    base = analyze(prog, strat_cls(), backend="bigint")
    res = analyze(prog, strat_cls(), backend="accel")
    assert res.stats.accel_active == 1
    assert set(res.facts.all_facts()) == set(base.facts.all_facts())
    assert res.facts.edge_count() == base.facts.edge_count()


def test_load_accel_rejects_stale_api_version(accel_seam):
    sys.modules["repro.core._accel"] = types.SimpleNamespace(
        ACCEL_API_VERSION=ACCEL_API_VERSION + 1, drain=lambda *a: None
    )
    assert codegen_mod.load_accel() is None


def test_load_accel_accepts_matching_api_version(accel_seam):
    fake = types.SimpleNamespace(
        ACCEL_API_VERSION=ACCEL_API_VERSION, drain=lambda *a: None
    )
    sys.modules["repro.core._accel"] = fake
    assert codegen_mod.load_accel() is fake
    # Probe outcome is cached.
    sys.modules.pop("repro.core._accel")
    assert codegen_mod.load_accel() is fake


def test_accel_backend_is_codegen_plus_seam():
    assert issubclass(AccelBackend, CodegenBackend)
    assert AccelBackend.name == "accel"


# ---------------------------------------------------------------------------
# Fail-fast backend validation.
# ---------------------------------------------------------------------------


def test_session_rejects_unknown_backend_at_construction():
    with pytest.raises(KeyError, match="registered:"):
        AnalysisSession.from_c(SRC, backend="no-such-backend")


def test_session_rejects_bad_env_backend_at_construction(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "typo-backend")
    with pytest.raises(KeyError, match="REPRO_BACKEND"):
        AnalysisSession.from_c(SRC)


def test_cli_reports_bad_env_backend(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main

    src = tmp_path / "t.c"
    src.write_text("int x, *p;\nvoid main(void) { p = &x; }\n")
    monkeypatch.setenv("REPRO_BACKEND", "typo-backend")
    with pytest.raises(SystemExit) as exc:
        main([str(src), "-q", "p"])
    msg = str(exc.value)
    assert "typo-backend" in msg and "registered:" in msg
    assert "REPRO_BACKEND" in msg


def test_bench_cli_reports_unknown_backend(capsys):
    from repro.bench.__main__ import main as bench_main

    rc = bench_main(["--repeats", "1", "--programs", "twig",
                     "--figures", "6", "--backend", "bigint,nope"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "nope" in err and "registered:" in err


def test_unknown_backend_error_hints_at_accel_fallback(
    accel_seam, monkeypatch
):
    """With no built module, the error explains the accel fallback."""
    from repro.core.backend import backend_name

    with pytest.raises(KeyError) as exc:
        backend_name("definitely-not-a-backend")
    assert "accel" in str(exc.value)
    assert "tools/build_accel.py" in str(exc.value)
