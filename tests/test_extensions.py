"""Tests for the extension features beyond the paper's four instances:

- StridedOffsets (Wilson–Lam stride refinement, paper §6),
- the pessimistic Unknown mode (the alternative to Assumption 1 the
  paper sketches in §4.2.1).
"""

from conftest import pts, pts_names

from repro import Offsets, analyze_c
from repro.core import StridedOffsets
from repro.core.engine import Engine
from repro.frontend import program_from_c

ARRAY_WALK = """
struct buf {
    int *meta;
    char data[64];
    int *tail;
};
struct buf b;
int m, t;
char *p, *q;
void main(void) {
    b.meta = &m;
    b.tail = &t;
    p = &b.data[0];
    q = p + 5;
}
"""


class TestStridedOffsets:
    def test_plain_offsets_smears_whole_struct(self):
        r = analyze_c(ARRAY_WALK, Offsets())
        # q may point to every sub-field of b, including meta and tail.
        q = pts(r, "q")
        # ILP32 layout of struct buf: meta@0, data@4..67, tail@68.
        assert q == ["b+0", "b+4", "b+68"]

    def test_strided_keeps_pointer_in_array(self):
        r = analyze_c(ARRAY_WALK, StridedOffsets())
        assert pts(r, "q") == ["b+4"]  # the data array's canonical offset

    def test_strided_falls_back_outside_arrays(self):
        src = """
        struct pair { int *a; int *b; } s;
        int x, y;
        int **p, **q;
        void main(void) {
            s.a = &x;
            s.b = &y;
            p = &s.a;
            q = (int **)((char *)p + 4);
        }
        """
        r = analyze_c(src, StridedOffsets())
        # No array involved: Assumption-1 smearing still applies.
        assert pts(r, "q") == ["s+0", "s+4"]

    def test_strided_inherits_offsets_machinery(self):
        s = StridedOffsets()
        assert s.portable is False
        assert s.key == "strided_offsets"
        # Paper examples still hold (inherited lookup/resolve).
        src = """
        struct S { int *s1; int *s2; } s;
        int x, y, *p;
        void main(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }
        """
        r = analyze_c(src, StridedOffsets())
        assert pts_names(r, "p") == ["x"]

    def test_top_level_array_object(self):
        src = """
        char line[128];
        char *p, *q;
        void main(void) {
            p = line;
            q = p + 10;
        }
        """
        r = analyze_c(src, StridedOffsets())
        assert pts(r, "q") == ["line+0"]


class TestUnknownMode:
    SRC = """
    struct G { int *g1; int *g2; } g;
    int a, b, out;
    int **p, **q;
    void main(void) {
        g.g1 = &a;
        g.g2 = &b;
        p = &g.g1;
        q = (int **)((char *)p + 4);
        out = **q;
    }
    """

    def test_assumption1_default_no_flags(self):
        from repro import CommonInitialSequence

        r = analyze_c(self.SRC, CommonInitialSequence())
        assert r.corrupted_deref_sites() == []

    def test_pessimistic_flags_arith_derived_deref(self):
        from repro import CommonInitialSequence

        program = program_from_c(self.SRC)
        r = Engine(program, CommonInitialSequence(),
                   assume_valid_pointers=False).solve()
        flagged = r.corrupted_deref_sites()
        assert flagged, "deref of arithmetic-derived pointer must be flagged"
        assert any(r.pointer_of_deref(st).name == "q" for st in flagged)

    def test_pessimistic_does_not_flag_clean_derefs(self):
        from repro import CommonInitialSequence

        src = """
        int x, *p, out;
        void main(void) { p = &x; out = *p; }
        """
        program = program_from_c(src)
        r = Engine(program, CommonInitialSequence(),
                   assume_valid_pointers=False).solve()
        assert r.corrupted_deref_sites() == []

    def test_pessimistic_drops_arith_targets(self):
        from repro import CommonInitialSequence

        program = program_from_c(self.SRC)
        r = Engine(program, CommonInitialSequence(),
                   assume_valid_pointers=False).solve()
        q = program.objects.lookup("q")
        names = r.points_to_names(q)
        assert names == {"<unknown>"}
