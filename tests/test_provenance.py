"""The tracing layer: traced==untraced parity and provenance replay.

Two properties gate the provenance arena (``repro.obs.provenance``):

1. **Non-perturbation** — ``Engine(trace=True)`` reaches exactly the
   least fixpoint of the untraced engine (identical logical facts,
   identical order-independent stats), even though tracing disables
   online cycle collapsing.
2. **Replay** — every traced fact's recorded derivation re-derives the
   fact: re-running the recorded rule application (the strategy call for
   rules 2–5, the normalize for rule 1, the flow premise for edge and
   window propagation) from its recorded inputs yields the fact among
   its conclusions.
"""

from __future__ import annotations

import pytest

from repro import (
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    Offsets,
    analyze_c,
)
from repro.core.engine import Engine
from repro.core.reference import traced_equals_untraced
from repro.frontend import program_from_c
from repro.obs import RULE_LABELS, Tracer, replays
from repro.suite.generator import generate_program

STRATEGIES = (CollapseAlways, CollapseOnCast, CommonInitialSequence, Offsets)

CASTY = """
struct A { int *a1; struct A *next; };
struct B { int *b1; int *b2; };
int x, y, z, *p, *q;
struct A a; struct B b;
void main(void) {
    struct A *pa; struct B *pb;
    a.a1 = &x; a.next = &a;
    pb = (struct B *) &a;
    pb->b2 = &y;
    pa = a.next;
    p = pa->a1;
    q = b.b1;
    b = *pb;
}
"""


def _traced(src_or_prog, strategy):
    if isinstance(src_or_prog, str):
        program = program_from_c(src_or_prog)
    else:
        program = src_or_prog
    return Engine(program, strategy, trace=True).solve()


# ---------------------------------------------------------------------------
# Property 1: tracing does not perturb the analysis.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cls", STRATEGIES, ids=lambda c: c.key)
def test_traced_equals_untraced_casty(cls):
    program = program_from_c(CASTY)
    untraced, traced = traced_equals_untraced(program, cls())
    assert traced.tracer is not None
    assert untraced.tracer is None
    # Collapsing is off under tracing; everything else must agree
    # (traced_equals_untraced asserts facts and gateable stats itself).
    assert traced.stats.sccs_collapsed == 0


@pytest.mark.parametrize("seed", range(8))
def test_traced_equals_untraced_generated(seed):
    program = program_from_c(generate_program(seed))
    for cls in STRATEGIES:
        traced_equals_untraced(program, cls())


# ---------------------------------------------------------------------------
# Property 2: every traced fact's provenance replays to the same fact.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cls", STRATEGIES, ids=lambda c: c.key)
def test_every_fact_replays_casty(cls):
    strategy = cls()
    result = _traced(CASTY, strategy)
    tracer = result.tracer
    assert len(tracer) > 0
    for key in tracer.fact_node:
        assert replays(tracer, result.facts, strategy, key), (
            f"fact {result.facts.ref_of(key[0])!r} -> "
            f"{result.facts.ref_of(key[1])!r} does not replay"
        )


@pytest.mark.parametrize("seed", range(6))
def test_every_fact_replays_generated(seed):
    program = program_from_c(generate_program(seed + 100))
    for cls in STRATEGIES:
        strategy = cls()
        result = Engine(program, strategy, trace=True).solve()
        tracer = result.tracer
        for key in tracer.fact_node:
            assert replays(tracer, result.facts, strategy, key)


def test_replays_pessimistic_mode():
    """Assumption-1-off runs record Unknown facts that must replay too."""
    src = """
    int arr[4]; int *p, *q;
    void main(void) { p = &arr[0]; q = p + 1; *q = 0; }
    """
    program = program_from_c(src)
    strategy = CommonInitialSequence()
    result = Engine(program, strategy, trace=True,
                    assume_valid_pointers=False).solve()
    tracer = result.tracer
    assert any(
        result.facts.ref_of(d).obj.name == "<unknown>"
        for (_s, d) in tracer.fact_node
    )
    for key in tracer.fact_node:
        assert replays(tracer, result.facts, strategy, key)


# ---------------------------------------------------------------------------
# Arena invariants.
# ---------------------------------------------------------------------------
def test_tracer_arena_invariants(any_strategy):
    result = _traced(CASTY, any_strategy)
    t = result.tracer
    # One node per logical fact; node arenas stay parallel.
    assert len(t.node_facts) == len(t.node_ctxs) == len(t.node_premises)
    assert len(t.fact_node) == len(t.node_facts) == result.facts.edge_count()
    # Premises precede conclusions (acyclicity of the derivation graph).
    for idx, prems in enumerate(t.node_premises):
        for p in prems:
            assert t.fact_node[p] < idx
    # Context 0 is the pre-seeded unattributed context.
    assert t.ctx_rules[Tracer.UNATTRIBUTED] == 0
    assert t.ctx_labels[Tracer.UNATTRIBUTED] == "unattributed"
    # Every context rule has a Figure-2 label.
    assert set(t.ctx_rules) <= set(RULE_LABELS)


def test_rule_counts_sum_to_nodes(any_strategy):
    result = _traced(CASTY, any_strategy)
    t = result.tracer
    counts = t.rule_counts()
    assert sum(counts.values()) == len(t)
    summary = t.summary()
    assert summary["nodes"] == len(t)
    assert summary["contexts"] == len(t.ctx_rules) - 1


def test_rule1_nodes_match_stats_firings():
    """Each AddrOf firing yields at most one rule-1 node (dups collapse)."""
    program = program_from_c(CASTY)
    result = Engine(program, CommonInitialSequence(), trace=True).solve()
    t = result.tracer
    rule1_nodes = t.rule_counts().get(1, 0)
    assert 0 < rule1_nodes <= result.stats.rule1_firings


# ---------------------------------------------------------------------------
# Rule-firing counters (untraced path; order-independent).
# ---------------------------------------------------------------------------
def test_rule_firings_counted_untraced():
    result = analyze_c(CASTY, CommonInitialSequence())
    s = result.stats
    assert s.rule1_firings > 0          # AddrOf statements exist
    assert s.rule3_firings > 0          # plain copies exist
    assert s.rule4_firings > 0          # p = pa->a1 loads
    assert s.rule5_firings > 0          # pb->b2 = &y stores
    # Rule 2/4/5 fire per (statement, pointee): at least one per call.
    assert s.rule2_firings >= 0


def test_strategy_memo_counters_accumulate():
    strategy = CommonInitialSequence()
    before = strategy.memo_counters()
    analyze_c(CASTY, strategy)
    after = strategy.memo_counters()
    assert after["resolve_memo_hits"] + after["resolve_memo_misses"] > (
        before["resolve_memo_hits"] + before["resolve_memo_misses"]
    )
    assert set(after) == {
        "lookup_memo_hits", "lookup_memo_misses",
        "resolve_memo_hits", "resolve_memo_misses",
        "all_refs_memo_hits", "all_refs_memo_misses",
    }
