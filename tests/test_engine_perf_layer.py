"""Tests for the delta-driven engine's performance layer: incremental
fact counting, allocation-free views, the window interval index, the
memoized strategy layer (and its Figure-3 invariant), EngineStats
serialization/merging, analysis-budget behaviour on real programs, and
the parallel bench harness."""

import pytest

from repro.core import ALL_STRATEGIES, STRATEGY_BY_KEY, analyze
from repro.core.engine import (
    AnalysisBudgetExceeded,
    Engine,
    EngineStats,
    _WindowIndex,
)
from repro.core.facts import FactBase
from repro.ctype.types import int_t, ptr
from repro.frontend import program_from_c
from repro.ir.objects import ObjectFactory
from repro.ir.refs import FieldRef


def fr(obj, *path):
    return FieldRef(obj, tuple(path))


SRC = """
struct node { struct node *next; int *payload; };
struct node a, b, c;
int x, y;
void main(void) {
    a.next = &b;
    b.next = &c;
    c.next = &a;
    a.payload = &x;
    b.payload = &y;
    c.payload = a.next->payload;
}
"""


# ---------------------------------------------------------------------------
# FactBase: incremental counting and views.
# ---------------------------------------------------------------------------


class TestFactBaseCounting:
    def test_count_incremental_with_duplicates(self):
        objs = ObjectFactory()
        fb = FactBase()
        t = objs.global_var("t", int_t)
        srcs = [objs.global_var(f"s{i}", ptr(int_t)) for i in range(5)]
        for s in srcs:
            assert fb.add(fr(s), fr(t)) is True
            assert fb.add(fr(s), fr(t)) is False  # duplicate: count unchanged
        assert fb.edge_count() == 5
        assert len(fb) == 5

    def test_views_match_public_api(self):
        objs = ObjectFactory()
        fb = FactBase()
        a = objs.global_var("a", ptr(int_t))
        x = objs.global_var("x", int_t)
        y = objs.global_var("y", int_t)
        fb.add(fr(a), fr(x))
        fb.add(fr(a), fr(y))
        assert set(fb.points_to_view(fr(a))) == set(fb.points_to(fr(a)))
        assert set(fb.refs_of_obj_view(a)) == set(fb.refs_of_obj(a))
        # Missing keys: empty, and no index entry is created by the probe.
        assert fb.points_to_view(fr(x)) == frozenset()
        assert fb.refs_of_obj_view(x) == frozenset()
        assert fb.edge_count() == 2

    def test_public_api_returns_stable_copies(self):
        objs = ObjectFactory()
        fb = FactBase()
        a = objs.global_var("a", ptr(int_t))
        x = objs.global_var("x", int_t)
        y = objs.global_var("y", int_t)
        fb.add(fr(a), fr(x))
        snapshot = fb.points_to(fr(a))
        fb.add(fr(a), fr(y))
        assert snapshot == frozenset({fr(x)})  # unaffected by later adds


# ---------------------------------------------------------------------------
# Window interval index.
# ---------------------------------------------------------------------------


class TestWindowIndex:
    @staticmethod
    def _key(hit):
        lo, dobj, dbase = hit
        return (lo, id(dobj), dbase)

    def _brute(self, windows, off):
        return sorted(
            (
                (lo, dobj, dbase)
                for lo, size, dobj, dbase in windows
                if lo <= off < lo + size
            ),
            key=self._key,
        )

    def test_matches_brute_force(self):
        objs = ObjectFactory()
        dsts = [objs.global_var(f"d{i}", int_t) for i in range(4)]
        windows = [
            (0, 8, dsts[0], 0),
            (4, 16, dsts[1], 8),
            (4, 2, dsts[2], 0),
            (24, 8, dsts[3], 4),
            (0, 40, dsts[0], 100),  # long window spanning everything
        ]
        index = _WindowIndex()
        for lo, size, dobj, dbase in windows:
            index.insert(lo, size, dobj, dbase)
        for off in range(-2, 48):
            got = sorted(index.matches(off), key=self._key)
            assert got == self._brute(windows, off), f"offset {off}"

    def test_incremental_inserts_keep_index_consistent(self):
        objs = ObjectFactory()
        d = objs.global_var("d", int_t)
        index = _WindowIndex()
        windows = []
        for lo, size in [(10, 4), (0, 30), (12, 2), (8, 1), (20, 10)]:
            windows.append((lo, size, d, lo))
            index.insert(lo, size, d, lo)
            for off in range(0, 35):
                assert sorted(index.matches(off), key=self._key) == self._brute(windows, off)


# ---------------------------------------------------------------------------
# Memoized strategy layer.
# ---------------------------------------------------------------------------


class TestStrategyMemoization:
    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
    def test_reused_strategy_instance_matches_fresh(self, cls):
        """A strategy reused across programs (warm caches) must produce
        the same facts and the same Figure-3 counters as fresh ones."""
        shared = cls()
        progs = [program_from_c(SRC, name=f"p{i}") for i in range(2)]
        for prog in progs:
            warm = analyze(prog, shared)
            cold = analyze(prog, cls())
            assert warm.facts.edge_count() == cold.facts.edge_count()
            assert {(repr(s), repr(d)) for s, d in warm.facts.all_facts()} == {
                (repr(s), repr(d)) for s, d in cold.facts.all_facts()
            }
            wd, cd = warm.stats.as_dict(), cold.stats.as_dict()
            wd.pop("solve_seconds"), cd.pop("solve_seconds")
            assert wd == cd

    def test_cached_lookup_counts_every_call(self):
        """The memo cache sits below the instrumentation boundary: hits
        still increment the engine's per-call counters."""
        prog = program_from_c(SRC)
        res = analyze(prog, STRATEGY_BY_KEY["common_initial_sequence"]())
        strategy = res.strategy
        before = res.stats.lookup_calls
        assert before > 0
        # Re-running one instrumented lookup through a fresh engine on the
        # same (warm) strategy instance must bump the counter again.
        engine = Engine(prog, strategy)
        engine.solve()
        assert engine.stats.lookup_calls == before

    def test_cached_results_are_consistent(self):
        prog = program_from_c(SRC)
        strategy = STRATEGY_BY_KEY["offsets"]()
        analyze(prog, strategy)
        obj = prog.objects.lookup("a")
        target = strategy.normalize(FieldRef(obj, ()))
        tau = obj.type
        r1 = strategy.cached_lookup(tau, ("next",), target)
        r2 = strategy.cached_lookup(tau, ("next",), target)
        assert r1 == r2
        cold = strategy.lookup(tau, ("next",), target)
        assert r1[0] == cold[0] and r1[1] == cold[1]


# ---------------------------------------------------------------------------
# EngineStats serialization / aggregation.
# ---------------------------------------------------------------------------


class TestEngineStatsHelpers:
    def test_as_dict_round_trip(self):
        s = EngineStats(lookup_calls=3, resolve_calls=5, facts=7,
                        solve_seconds=0.25)
        d = s.as_dict()
        assert d["lookup_calls"] == 3 and d["solve_seconds"] == 0.25
        assert EngineStats.from_dict(d) == s
        # Unknown keys (e.g. from a newer baseline schema) are ignored.
        d["future_field"] = 1
        assert EngineStats.from_dict(d) == s

    def test_merge_sums_fields(self):
        a = EngineStats(lookup_calls=1, facts=2, solve_seconds=0.5)
        b = EngineStats(lookup_calls=10, facts=20, solve_seconds=0.25)
        m = a.merge(b)
        assert m.lookup_calls == 11 and m.facts == 22
        assert m.solve_seconds == pytest.approx(0.75)

    def test_merged_many(self):
        parts = [EngineStats(resolve_calls=i) for i in range(5)]
        assert EngineStats.merged(parts).resolve_calls == 10
        assert EngineStats.merged([]) == EngineStats()


# ---------------------------------------------------------------------------
# Analysis budget on a real program.
# ---------------------------------------------------------------------------


class TestAnalysisBudget:
    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
    def test_tiny_budget_raises_with_partial_stats(self, cls):
        prog = program_from_c(SRC)
        engine = Engine(prog, cls(), max_facts=1)
        with pytest.raises(AnalysisBudgetExceeded):
            engine.solve()
        # The partial run is observable: the counter crossed the budget
        # and the facts added before the abort are still in the base.
        assert engine.stats.facts == 2
        assert engine.facts.edge_count() == 2
        assert engine.stats.facts == engine.facts.edge_count()

    def test_generous_budget_unaffected(self):
        prog = program_from_c(SRC)
        res = analyze(prog, STRATEGY_BY_KEY["common_initial_sequence"](),
                      max_facts=1_000_000)
        assert res.stats.facts == res.facts.edge_count() > 0
