"""Tests for the delta-driven engine's performance layer: incremental
fact counting, allocation-free views, the window interval index, the
memoized strategy layer (and its Figure-3 invariant), EngineStats
serialization/merging, analysis-budget behaviour on real programs, and
the parallel bench harness."""

import pytest

from repro.core import ALL_STRATEGIES, STRATEGY_BY_KEY, analyze
from repro.core.engine import (
    AnalysisBudgetExceeded,
    Engine,
    EngineStats,
    _WindowIndex,
)
from repro.core.facts import FactBase
from repro.ctype.types import int_t, ptr
from repro.frontend import program_from_c
from repro.ir.objects import ObjectFactory
from repro.ir.refs import FieldRef


def fr(obj, *path):
    return FieldRef(obj, tuple(path))


SRC = """
struct node { struct node *next; int *payload; };
struct node a, b, c;
int x, y;
void main(void) {
    a.next = &b;
    b.next = &c;
    c.next = &a;
    a.payload = &x;
    b.payload = &y;
    c.payload = a.next->payload;
}
"""


# ---------------------------------------------------------------------------
# FactBase: incremental counting and views.
# ---------------------------------------------------------------------------


class TestFactBaseCounting:
    def test_count_incremental_with_duplicates(self):
        objs = ObjectFactory()
        fb = FactBase()
        t = objs.global_var("t", int_t)
        srcs = [objs.global_var(f"s{i}", ptr(int_t)) for i in range(5)]
        for s in srcs:
            assert fb.add(fr(s), fr(t)) is True
            assert fb.add(fr(s), fr(t)) is False  # duplicate: count unchanged
        assert fb.edge_count() == 5
        assert len(fb) == 5

    def test_views_match_public_api(self):
        objs = ObjectFactory()
        fb = FactBase()
        a = objs.global_var("a", ptr(int_t))
        x = objs.global_var("x", int_t)
        y = objs.global_var("y", int_t)
        fb.add(fr(a), fr(x))
        fb.add(fr(a), fr(y))
        assert set(fb.points_to_view(fr(a))) == set(fb.points_to(fr(a)))
        assert set(fb.refs_of_obj_view(a)) == set(fb.refs_of_obj(a))
        # Missing keys: empty, and no index entry is created by the probe.
        assert fb.points_to_view(fr(x)) == frozenset()
        assert fb.refs_of_obj_view(x) == frozenset()
        assert fb.edge_count() == 2

    def test_public_api_returns_stable_copies(self):
        objs = ObjectFactory()
        fb = FactBase()
        a = objs.global_var("a", ptr(int_t))
        x = objs.global_var("x", int_t)
        y = objs.global_var("y", int_t)
        fb.add(fr(a), fr(x))
        snapshot = fb.points_to(fr(a))
        fb.add(fr(a), fr(y))
        assert snapshot == frozenset({fr(x)})  # unaffected by later adds


# ---------------------------------------------------------------------------
# Window interval index.
# ---------------------------------------------------------------------------


class TestWindowIndex:
    @staticmethod
    def _key(hit):
        lo, dobj, dbase = hit
        return (lo, id(dobj), dbase)

    def _brute(self, windows, off):
        return sorted(
            (
                (lo, dobj, dbase)
                for lo, size, dobj, dbase in windows
                if lo <= off < lo + size
            ),
            key=self._key,
        )

    def test_matches_brute_force(self):
        objs = ObjectFactory()
        dsts = [objs.global_var(f"d{i}", int_t) for i in range(4)]
        windows = [
            (0, 8, dsts[0], 0),
            (4, 16, dsts[1], 8),
            (4, 2, dsts[2], 0),
            (24, 8, dsts[3], 4),
            (0, 40, dsts[0], 100),  # long window spanning everything
        ]
        index = _WindowIndex()
        for lo, size, dobj, dbase in windows:
            index.insert(lo, size, dobj, dbase)
        for off in range(-2, 48):
            got = sorted(index.matches(off), key=self._key)
            assert got == self._brute(windows, off), f"offset {off}"

    def test_incremental_inserts_keep_index_consistent(self):
        objs = ObjectFactory()
        d = objs.global_var("d", int_t)
        index = _WindowIndex()
        windows = []
        for lo, size in [(10, 4), (0, 30), (12, 2), (8, 1), (20, 10)]:
            windows.append((lo, size, d, lo))
            index.insert(lo, size, d, lo)
            for off in range(0, 35):
                assert sorted(index.matches(off), key=self._key) == self._brute(windows, off)


# ---------------------------------------------------------------------------
# Memoized strategy layer.
# ---------------------------------------------------------------------------


class TestStrategyMemoization:
    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
    def test_reused_strategy_instance_matches_fresh(self, cls):
        """A strategy reused across programs (warm caches) must produce
        the same facts and the same Figure-3 counters as fresh ones."""
        shared = cls()
        progs = [program_from_c(SRC, name=f"p{i}") for i in range(2)]
        for prog in progs:
            warm = analyze(prog, shared)
            cold = analyze(prog, cls())
            assert warm.facts.edge_count() == cold.facts.edge_count()
            assert {(repr(s), repr(d)) for s, d in warm.facts.all_facts()} == {
                (repr(s), repr(d)) for s, d in cold.facts.all_facts()
            }
            wd, cd = warm.stats.as_dict(), cold.stats.as_dict()
            wd.pop("solve_seconds"), cd.pop("solve_seconds")
            assert wd == cd

    def test_cached_lookup_counts_every_call(self):
        """The memo cache sits below the instrumentation boundary: hits
        still increment the engine's per-call counters."""
        prog = program_from_c(SRC)
        res = analyze(prog, STRATEGY_BY_KEY["common_initial_sequence"]())
        strategy = res.strategy
        before = res.stats.lookup_calls
        assert before > 0
        # Re-running one instrumented lookup through a fresh engine on the
        # same (warm) strategy instance must bump the counter again.
        engine = Engine(prog, strategy)
        engine.solve()
        assert engine.stats.lookup_calls == before

    def test_cached_results_are_consistent(self):
        prog = program_from_c(SRC)
        strategy = STRATEGY_BY_KEY["offsets"]()
        analyze(prog, strategy)
        obj = prog.objects.lookup("a")
        target = strategy.normalize(FieldRef(obj, ()))
        tau = obj.type
        r1 = strategy.cached_lookup(tau, ("next",), target)
        r2 = strategy.cached_lookup(tau, ("next",), target)
        assert r1 == r2
        cold = strategy.lookup(tau, ("next",), target)
        assert r1[0] == cold[0] and r1[1] == cold[1]


# ---------------------------------------------------------------------------
# EngineStats serialization / aggregation.
# ---------------------------------------------------------------------------


class TestEngineStatsHelpers:
    def test_as_dict_round_trip(self):
        s = EngineStats(lookup_calls=3, resolve_calls=5, facts=7,
                        solve_seconds=0.25)
        d = s.as_dict()
        assert d["lookup_calls"] == 3 and d["solve_seconds"] == 0.25
        assert EngineStats.from_dict(d) == s
        # Unknown keys (e.g. from a newer baseline schema) are ignored.
        d["future_field"] = 1
        assert EngineStats.from_dict(d) == s

    def test_merge_sums_fields(self):
        a = EngineStats(lookup_calls=1, facts=2, solve_seconds=0.5)
        b = EngineStats(lookup_calls=10, facts=20, solve_seconds=0.25)
        m = a.merge(b)
        assert m.lookup_calls == 11 and m.facts == 22
        assert m.solve_seconds == pytest.approx(0.75)

    def test_merged_many(self):
        parts = [EngineStats(resolve_calls=i) for i in range(5)]
        assert EngineStats.merged(parts).resolve_calls == 10
        assert EngineStats.merged([]) == EngineStats()

    def test_merged_empty_iterable_not_just_list(self):
        # merged() must cope with any (possibly empty) iterable, not
        # only lists — the bench harness feeds it generator expressions.
        assert EngineStats.merged(s for s in ()) == EngineStats()
        assert EngineStats.merged(iter([])).sccs_collapsed == 0

    def test_collapse_counters_round_trip(self):
        s = EngineStats(facts=7, sccs_collapsed=3, props_saved=41)
        d = s.as_dict()
        assert d["sccs_collapsed"] == 3 and d["props_saved"] == 41
        assert EngineStats.from_dict(d) == s

    def test_from_dict_tolerates_pre_collapse_schema(self):
        # Baselines written before the collapse counters existed lack the
        # keys; they must load with the counters defaulted to zero.
        d = EngineStats(lookup_calls=2, facts=9).as_dict()
        del d["sccs_collapsed"], d["props_saved"]
        s = EngineStats.from_dict(d)
        assert s.lookup_calls == 2 and s.facts == 9
        assert s.sccs_collapsed == 0 and s.props_saved == 0

    def test_merge_sums_collapse_counters(self):
        a = EngineStats(sccs_collapsed=1, props_saved=10)
        b = EngineStats(sccs_collapsed=2, props_saved=5)
        m = a.merge(b)
        assert m.sccs_collapsed == 3 and m.props_saved == 15


# ---------------------------------------------------------------------------
# Analysis budget on a real program.
# ---------------------------------------------------------------------------


class TestAnalysisBudget:
    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
    def test_tiny_budget_raises_with_partial_stats(self, cls):
        prog = program_from_c(SRC)
        engine = Engine(prog, cls(), max_facts=1)
        with pytest.raises(AnalysisBudgetExceeded):
            engine.solve()
        # The partial run is observable: the counter crossed the budget
        # and the facts added before the abort are still in the base.
        assert engine.stats.facts == 2
        assert engine.facts.edge_count() == 2
        assert engine.stats.facts == engine.facts.edge_count()

    def test_generous_budget_unaffected(self):
        prog = program_from_c(SRC)
        res = analyze(prog, STRATEGY_BY_KEY["common_initial_sequence"](),
                      max_facts=1_000_000)
        assert res.stats.facts == res.facts.edge_count() > 0

    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
    def test_budget_identical_in_traced_drain(self, cls):
        """``max_facts`` goes through the same ``_account`` chokepoint in
        the traced drain: the abort happens at the same fact count."""
        prog = program_from_c(SRC)
        engine = Engine(prog, cls(), max_facts=1, trace=True)
        with pytest.raises(AnalysisBudgetExceeded):
            engine.solve()
        assert engine.stats.facts == 2
        assert engine.facts.edge_count() == 2

    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
    def test_budget_identical_in_fifo_drain(self, cls):
        prog = program_from_c(SRC)
        engine = Engine(prog, cls(), max_facts=1, worklist="fifo")
        with pytest.raises(AnalysisBudgetExceeded):
            engine.solve()
        assert engine.stats.facts == 2
        assert engine.facts.edge_count() == 2

    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
    def test_budget_enforced_in_incremental_resolve(self, cls):
        """An incremental re-solve is bounded by the same budget: solve a
        prefix under a roomy budget, tighten it on the live engine, and
        the delta drain must abort the moment the counter crosses it."""
        from repro import AnalysisSession

        prog = program_from_c(SRC)
        # Hold out everything but the first statement of main.
        info = prog.functions["main"]
        held = info.stmts[1:]
        info.stmts[:] = info.stmts[:1]
        session = AnalysisSession(prog)
        result = session.solve(cls())
        solved_facts = result.stats.facts
        (engine,) = session._engines.values()
        engine.max_facts = solved_facts  # any further gain must raise
        with pytest.raises(AnalysisBudgetExceeded):
            session.add_statements(held, function="main")
        # The abort happened at the accounting chokepoint: the counter
        # crossed the tightened budget by exactly one gain batch.
        assert engine.stats.facts > solved_facts
        # The incremental counters recorded the attempt before the abort.
        assert engine.stats.incremental_solves == 1
        assert engine.stats.delta_stmts == len(held)


# ---------------------------------------------------------------------------
# Online cycle collapsing (union-find plane of the interned fact base).
# ---------------------------------------------------------------------------

CYCLE_SRC = """
struct S { int *p; int *q; };
int x, y;
int *s0;
int **pp, **qq, **rr;
struct S a, b, c, d;
int **id(int **v) { return v; }
void main(void) {
    a.p = &x;
    d.q = &y;
    b = a;      /* struct copy cycle: a -> b -> c -> a */
    c = b;
    a = c;
    a = d;      /* an edge into the cycle from outside */
    qq = pp;    /* pointer copy chain pp -> qq -> rr */
    rr = qq;
    /* call-binding cycle: pp -> v(param) -> return -> pp.  Call edges
       are plain copy edges under every strategy (including Offsets,
       whose variable copies otherwise go through windows). */
    pp = id(pp);
    pp = &s0;   /* seeded after the cycle is wired, so the fact flows
                   around the closed cycle during drain */
    s0 = &x;
}
"""


def _ref_key(r):
    """Position of a ref inside its object (path or byte offset)."""
    return r.path if hasattr(r, "path") else r.offset


class TestCycleCollapsing:
    def test_factbase_union_merges_source_plane(self):
        objs = ObjectFactory()
        fb = FactBase()
        t1 = objs.global_var("t1", int_t)
        t2 = objs.global_var("t2", int_t)
        p = objs.global_var("p", ptr(int_t))
        q = objs.global_var("q", ptr(int_t))
        fb.add(fr(p), fr(t1))
        fb.add(fr(q), fr(t2))
        pid, qid = fb.intern(fr(p)), fb.intern(fr(q))
        rep, dead, gain, fresh = fb.union(pid, qid)
        assert {rep, dead} == {pid, qid} and rep != dead
        assert fb.find(pid) == fb.find(qid) == rep
        # Both sets merged; per-ref queries see the union through either name.
        assert fb.points_to(fr(p)) == fb.points_to(fr(q)) == {fr(t1), fr(t2)}
        # Logical count: 2 members x 2 targets.
        assert fb.edge_count() == 4
        # fresh holds exactly the bits each side was missing.
        assert fb.decode(fresh) == fb.decode(fresh)  # well-formed bitset
        assert len(fb.decode(fresh)) == 2

    def test_union_is_idempotent(self):
        objs = ObjectFactory()
        fb = FactBase()
        p = objs.global_var("p", ptr(int_t))
        q = objs.global_var("q", ptr(int_t))
        pid, qid = fb.intern(fr(p)), fb.intern(fr(q))
        rep1, _, _, _ = fb.union(pid, qid)
        rep2, dead2, gain2, fresh2 = fb.union(pid, qid)
        assert rep2 == rep1 and dead2 == rep1 and gain2 == 0 and fresh2 == 0

    @pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
    def test_cycle_program_collapses_and_stays_exact(self, cls):
        prog = program_from_c(CYCLE_SRC)
        res = analyze(prog, cls())
        if cls.key == "offsets":
            # Offsets routes *every* copy (including call bindings, via
            # the temp -> lhs hop) through resolve, which it answers with
            # windows — its copy-edge plane is empty, so there is nothing
            # to collapse.  The cycle must still converge to exact facts.
            assert res.stats.windows > 0
        else:
            assert res.stats.sccs_collapsed > 0
        # Members of the collapsed cycle expose identical points-to sets
        # through the ordinary public API: positionally matching refs of
        # a, b, c must agree (everything flows around the cycle).
        by_obj = {}
        for r in res.facts.sources():
            by_obj.setdefault(r.obj.name, {})[_ref_key(r)] = res.facts.points_to(r)
        for key, a_pts in by_obj["a"].items():
            for name in ("b", "c"):
                if key in by_obj.get(name, {}):
                    assert by_obj[name][key] == a_pts
        # x flowed around the struct cycle; y entered it from outside.
        a_names = {t.obj.name for pts in by_obj["a"].values() for t in pts}
        assert {"x", "y"} <= a_names
        # The scalar pointer cycle converged too.
        for var in ("pp", "qq", "rr"):
            (pts,) = by_obj[var].values()
            assert {t.obj.name for t in pts} == {"s0"}

    def test_props_saved_counts_internal_edges(self):
        prog = program_from_c(CYCLE_SRC)
        res = analyze(prog, STRATEGY_BY_KEY["common_initial_sequence"]())
        assert res.stats.props_saved > 0
