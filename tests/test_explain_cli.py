"""The ``python -m repro explain`` CLI: golden trees and behaviors.

One golden derivation tree per framework instance over the README
quickstart program — each exercises a different strategy rendering
(whole-object pairs, field pairs, CIS field pairs, byte windows) while
deriving the same logical chain:

    rule 1 (&x, &s.s1 axioms) → rule 5 (*t2 = t1) → rule 3 (t5 = s.s1)
    → rule 3 (p = t5)
"""

from __future__ import annotations

import pytest

from repro.__main__ import main as repro_main

QUICKSTART = """\
struct S { int *s1; int *s2; } s;
int x, y, *p;
void main(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }
"""

GOLDEN = {
    "collapse_always": """\
pointsTo(p, x)
  by rule 3 (s = t.b)  [main:3]  p = main::%t5
  via resolve(p, main::%t5, τ=int*) = {p←main::%t5} — a copy transfers between the whole collapsed objects (§4.3.1)
└─ pointsTo(main::%t5, x)
     by rule 3 (s = t.b)  [main:3]  main::%t5 = s.s1
     via resolve(main::%t5, s, τ=int*) = {main::%t5←s}  [involved structures] — a copy transfers between the whole collapsed objects (§4.3.1)
   └─ pointsTo(s, x)
        by rule 5 (*p = t)  [main:3]  *main::%t2 = main::%t1
        via resolve(s, main::%t1, τ=int*) = {s←main::%t1}  [involved structures] — a copy transfers between the whole collapsed objects (§4.3.1)
      ├─ pointsTo(main::%t1, x)
      │    by rule 1 (s = &t.b)  [main:3]  main::%t1 = &x
      └─ pointsTo(main::%t2, s)
           by rule 1 (s = &t.b)  [main:3]  main::%t2 = &s.s1""",
    "collapse_on_cast": """\
pointsTo(p, x)
  by rule 3 (s = t.b)  [main:3]  p = main::%t5
  via resolve(p, main::%t5, τ=int*) = {p←main::%t5} — fields are paired per position δ of τ through lookup on both sides (§4.3.2, footnote 7: inner lookups uncounted)
└─ pointsTo(main::%t5, x)
     by rule 3 (s = t.b)  [main:3]  main::%t5 = s.s1
     via resolve(main::%t5, s.s1, τ=int*) = {main::%t5←s.s1}  [involved structures] — fields are paired per position δ of τ through lookup on both sides (§4.3.2, footnote 7: inner lookups uncounted)
   └─ pointsTo(s.s1, x)
        by rule 5 (*p = t)  [main:3]  *main::%t2 = main::%t1
        via resolve(s.s1, main::%t1, τ=int*) = {s.s1←main::%t1}  [involved structures] — fields are paired per position δ of τ through lookup on both sides (§4.3.2, footnote 7: inner lookups uncounted)
      ├─ pointsTo(main::%t1, x)
      │    by rule 1 (s = &t.b)  [main:3]  main::%t1 = &x
      └─ pointsTo(main::%t2, s.s1)
           by rule 1 (s = &t.b)  [main:3]  main::%t2 = &s.s1""",
    "common_initial_sequence": """\
pointsTo(p, x)
  by rule 3 (s = t.b)  [main:3]  p = main::%t5
  via resolve(p, main::%t5, τ=int*) = {p←main::%t5} — fields are paired per position δ of τ through the CIS-aware lookup on both sides (§4.3.3)
└─ pointsTo(main::%t5, x)
     by rule 3 (s = t.b)  [main:3]  main::%t5 = s.s1
     via resolve(main::%t5, s.s1, τ=int*) = {main::%t5←s.s1}  [involved structures] — fields are paired per position δ of τ through the CIS-aware lookup on both sides (§4.3.3)
   └─ pointsTo(s.s1, x)
        by rule 5 (*p = t)  [main:3]  *main::%t2 = main::%t1
        via resolve(s.s1, main::%t1, τ=int*) = {s.s1←main::%t1}  [involved structures] — fields are paired per position δ of τ through the CIS-aware lookup on both sides (§4.3.3)
      ├─ pointsTo(main::%t1, x)
      │    by rule 1 (s = &t.b)  [main:3]  main::%t1 = &x
      └─ pointsTo(main::%t2, s.s1)
           by rule 1 (s = &t.b)  [main:3]  main::%t2 = &s.s1""",
    "offsets": """\
pointsTo(p+0, x+0)
  by rule 3 (s = t.b)  [main:3]  p = main::%t5
  via resolve(p+0, main::%t5+0, τ=int*) = window p+0 ← main::%t5+0 (4 bytes) — a sizeof(τ)-byte window pairing every byte of the copy, matched lazily against extant source facts (§4.2.2)
└─ pointsTo(main::%t5+0, x+0)
     by rule 3 (s = t.b)  [main:3]  main::%t5 = s.s1
     via resolve(main::%t5+0, s+0, τ=int*) = window main::%t5+0 ← s+0 (4 bytes)  [involved structures] — a sizeof(τ)-byte window pairing every byte of the copy, matched lazily against extant source facts (§4.2.2)
   └─ pointsTo(s+0, x+0)
        by rule 5 (*p = t)  [main:3]  *main::%t2 = main::%t1
        via resolve(s+0, main::%t1+0, τ=int*) = window s+0 ← main::%t1+0 (4 bytes)  [involved structures] — a sizeof(τ)-byte window pairing every byte of the copy, matched lazily against extant source facts (§4.2.2)
      ├─ pointsTo(main::%t1+0, x+0)
      │    by rule 1 (s = &t.b)  [main:3]  main::%t1 = &x
      └─ pointsTo(main::%t2+0, s+0)
           by rule 1 (s = &t.b)  [main:3]  main::%t2 = &s.s1""",
}


@pytest.fixture()
def quickstart(tmp_path):
    path = tmp_path / "quickstart.c"
    path.write_text(QUICKSTART)
    return str(path)


def _tree_lines(output: str) -> str:
    """The derivation tree only (drop the leading ``#`` header lines)."""
    lines = [l for l in output.splitlines() if not l.startswith("#")]
    return "\n".join(lines).rstrip()


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_explain_golden_tree(quickstart, key, capsys):
    rc = repro_main(["explain", quickstart, key, "p -> x"])
    assert rc == 0
    out = capsys.readouterr().out
    assert _tree_lines(out) == GOLDEN[key]


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_explain_tree_replays(quickstart, key):
    """Every fact in the rendered tree replays (tree ↔ arena coherence)."""
    from repro.core import STRATEGY_BY_KEY
    from repro.core.engine import Engine
    from repro.frontend import program_from_file
    from repro.obs import build_tree, replays

    program = program_from_file(quickstart)
    strategy = STRATEGY_BY_KEY[key]()
    result = Engine(program, strategy, trace=True).solve()
    p = program.objects.lookup("p")
    x = program.objects.lookup("x")
    from repro.ir.refs import FieldRef

    facts = result.facts
    key_ids = (
        facts.id_of(strategy.normalize(FieldRef(p, ()))),
        facts.id_of(strategy.normalize(FieldRef(x, ()))),
    )
    node = build_tree(result.tracer, facts, key_ids)
    assert node is not None

    def walk(n):
        yield n
        for c in n.premises:
            yield from walk(c)

    seen = 0
    for n in walk(node):
        if not (n.repeated or n.missing):
            assert replays(result.tracer, facts, strategy, n.key)
            seen += 1
    assert seen >= 5  # the full 5-fact chain is expanded


def test_explain_dot_export(quickstart, capsys):
    rc = repro_main(["explain", quickstart, "collapse_always", "p -> y", "--dot"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph derivation {")
    assert 'label="pointsTo(p, y)' in out
    assert "->" in out and out.rstrip().endswith("}")


def test_explain_underived_fact(quickstart, capsys):
    rc = repro_main(["explain", quickstart, "common_initial_sequence", "p -> y"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "was not derived" in out
    assert "points to: x" in out  # the hint lists the actual targets


def test_explain_no_calls_flag(quickstart, capsys):
    rc = repro_main(
        ["explain", quickstart, "offsets", "p -> x", "--no-calls"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "via resolve" not in out
    assert "by rule 1 (s = &t.b)" in out


def test_explain_field_query(quickstart, capsys):
    rc = repro_main(
        ["explain", quickstart, "common_initial_sequence", "s.s2 -> y"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "pointsTo(s.s2, y)" in out
    assert "by rule 5 (*p = t)" in out


def test_explain_bad_query(quickstart):
    with pytest.raises(SystemExit):
        repro_main(["explain", quickstart, "offsets", "p x"])  # no ->
    with pytest.raises(SystemExit):
        repro_main(["explain", quickstart, "nonsense", "p -> x"])
    with pytest.raises(SystemExit):
        repro_main(["explain", quickstart, "offsets", "missing_var -> x"])


def test_plain_cli_still_works(quickstart, capsys):
    """The subcommand dispatch must not break positional file usage."""
    rc = repro_main([quickstart, "-q", "p"])
    assert rc == 0
    assert "p ->" in capsys.readouterr().out
