"""Tests for the analysis clients: deref stats, call graph, MOD/REF."""

from repro import (
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    analyze_c,
)
from repro.clients import build_call_graph, deref_stats, mod_ref


class TestDerefStats:
    SRC = """
    struct S { int *s1; int *s2; } s;
    int x, y, *p, out;
    void main(void) {
        s.s1 = &x;
        s.s2 = &y;
        p = s.s1;
        out = *p;
    }
    """

    def test_single_site(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        st = deref_stats(r)
        assert st.count == 1
        assert st.sites[0].pointer_name == "p"

    def test_field_sensitive_average(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        assert deref_stats(r).average == 1.0

    def test_collapse_always_expanded(self):
        # p points to s (a 2-field struct): the fact expands to 2 per the
        # paper's Figure 4 comparability rule.
        r = analyze_c(self.SRC, CollapseAlways())
        assert deref_stats(r).average == 2.0

    def test_empty_deref(self):
        src = "int *p, x; void main(void) { x = *p; }"
        r = analyze_c(src, CollapseOnCast())
        st = deref_stats(r)
        assert st.count == 1
        assert st.empty_sites == 1
        assert st.average == 0.0

    def test_max_and_total(self):
        r = analyze_c(self.SRC, CollapseAlways())
        st = deref_stats(r)
        assert st.maximum == 2
        assert st.total == 2

    def test_indirect_call_is_a_site(self):
        src = """
        void f(void) {}
        void main(void) { void (*fp)(void) = f; fp(); }
        """
        r = analyze_c(src, CollapseOnCast())
        st = deref_stats(r)
        assert st.count == 1
        assert st.sites[0].set_size == 1


class TestCallGraph:
    SRC = """
    int add(int a, int b) { return a + b; }
    int sub(int a, int b) { return a - b; }
    int apply(int (*op)(int, int), int a, int b) { return op(a, b); }
    void main(void) {
        apply(add, 1, 2);
        apply(sub, 3, 4);
    }
    """

    def test_direct_edges(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        cg = build_call_graph(r)
        assert cg.callees("main") == {"apply"}

    def test_indirect_edges_resolved(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        cg = build_call_graph(r)
        # Context-insensitive: op may be add or sub.
        assert cg.callees("apply") == {"add", "sub"}

    def test_reachability(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        cg = build_call_graph(r)
        assert cg.reachable_from("main") == {"main", "apply", "add", "sub"}

    def test_indirect_site_bookkeeping(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        cg = build_call_graph(r)
        assert len(cg.indirect_sites) == 1
        assert not cg.unresolved_indirect_sites()

    def test_edge_count(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        assert build_call_graph(r).edge_count() == 3


class TestModRef:
    SRC = """
    int g1, g2;
    int *p;
    void writer(void) { *p = 1; }
    void reader(int *q) { g2 = *q; }
    void main(void) {
        p = &g1;
        writer();
        reader(&g1);
    }
    """

    def test_store_through_pointer_mods_target(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        mr = mod_ref(r)
        assert "g1" in mr.mod_of("writer")

    def test_load_refs_target(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        mr = mod_ref(r)
        assert "g1" in mr.ref_of("reader")
        assert "g2" in mr.mod_of("reader")

    def test_transitive_through_calls(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        mr = mod_ref(r)
        assert {"g1", "g2", "p"} <= mr.mod_of("main")

    def test_temps_not_reported(self):
        r = analyze_c(self.SRC, CollapseOnCast())
        mr = mod_ref(r)
        for name in mr.mod_of("main") | mr.ref_of("main"):
            assert "%t" not in name

    def test_precision_shows_up(self):
        # Field-sensitive MOD is smaller than collapse-always MOD when a
        # struct field pointer is written through.
        src = """
        struct S { int *a; int *b; } s;
        int x, y;
        void f(void) { *s.a = 1; }
        void main(void) { s.a = &x; s.b = &y; f(); }
        """
        fine = mod_ref(analyze_c(src, CommonInitialSequence()))
        coarse = mod_ref(analyze_c(src, CollapseAlways()))
        assert fine.mod_of("f") == {"x"}
        assert fine.mod_of("f") <= coarse.mod_of("f")
        assert "y" in coarse.mod_of("f")
