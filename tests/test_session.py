"""AnalysisSession facade: caching, freshness, growth, worklist policies.

The session-level behaviours: one parse serving many solves, result
caching keyed by strategy configuration, live results growing across
:meth:`~repro.session.AnalysisSession.add_statements`, the session
counters, and the FIFO worklist as the order-independence witness.
"""

from __future__ import annotations

import pytest

from repro import (
    ALL_STRATEGIES,
    AnalysisSession,
    CollapseAlways,
    CommonInitialSequence,
    Offsets,
    analyze,
    program_from_c,
)
from repro.core.worklist import FifoWorklist, PriorityWorklist, WORKLISTS
from repro.ir.refs import FieldRef
from repro.ir.stmts import AddrOf

SRC = """
struct S { int *s1; int *s2; } s;
int x, y, *p;
void main(void) { s.s1 = &x; p = s.s1; }
"""


def _obj(session, name):
    obj = session.program.objects.lookup(name)
    assert obj is not None, name
    return obj


class TestSessionBasics:
    def test_from_c_and_solve(self):
        session = AnalysisSession.from_c(SRC)
        result = session.solve(CommonInitialSequence())
        assert result.points_to_names(_obj(session, "p")) == {"x"}

    def test_solve_is_cached_per_configuration(self):
        session = AnalysisSession.from_c(SRC)
        a = session.solve(CommonInitialSequence())
        b = session.solve(CommonInitialSequence())
        assert a is b
        # A different strategy gets its own engine and result.
        c = session.solve(CollapseAlways())
        assert c is not a
        # Tracing is part of the configuration, not a cache hit.
        d = session.solve(CommonInitialSequence(), trace=True)
        assert d is not a and d.tracer is not None

    def test_fresh_forces_a_new_engine(self):
        session = AnalysisSession.from_c(SRC)
        a = session.solve(CommonInitialSequence())
        b = session.solve(CommonInitialSequence(), fresh=True)
        assert a is not b
        assert set(a.facts.all_facts()) == set(b.facts.all_facts())
        # fresh replaces the cache entry.
        assert session.solve(CommonInitialSequence()) is b

    def test_all_strategies_share_one_parse(self):
        session = AnalysisSession.from_c(SRC)
        results = [session.solve(cls()) for cls in ALL_STRATEGIES]
        assert len(session.cached_results()) == len(ALL_STRATEGIES)
        for r in results:
            assert r.program is session.program

    def test_analyze_matches_session_solve(self):
        program = program_from_c(SRC)
        via_analyze = analyze(program, CommonInitialSequence())
        via_session = AnalysisSession(program_from_c(SRC)).solve(
            CommonInitialSequence()
        )
        assert {
            (repr(a), repr(b)) for a, b in via_analyze.facts.all_facts()
        } == {(repr(a), repr(b)) for a, b in via_session.facts.all_facts()}


class TestSessionGrowth:
    def test_add_statements_updates_every_cached_result(self):
        session = AnalysisSession.from_c(SRC)
        fine = session.solve(CommonInitialSequence())
        coarse = session.solve(CollapseAlways())
        p = _obj(session, "p")
        y = _obj(session, "y")
        assert fine.points_to_names(p) == {"x"}
        session.add_statements([AddrOf(p, FieldRef(y, ()))], function="main")
        # Live views: the previously returned results grew in place.
        assert fine.points_to_names(p) == {"x", "y"}
        assert coarse.points_to_names(p) == {"x", "y"}

    def test_session_counters(self):
        session = AnalysisSession.from_c(SRC)
        result = session.solve(CommonInitialSequence())
        assert result.stats.incremental_solves == 0
        assert result.stats.delta_stmts == 0
        assert result.stats.reused_graph_refs == 0
        p, y = _obj(session, "p"), _obj(session, "y")
        refs_before = result.facts.num_refs()
        session.add_statements([AddrOf(p, FieldRef(y, ()))], function="main")
        assert result.stats.incremental_solves == 1
        assert result.stats.delta_stmts == 1
        assert result.stats.reused_graph_refs == refs_before

    def test_add_statements_global_scope(self):
        session = AnalysisSession.from_c(SRC)
        result = session.solve(CommonInitialSequence())
        p, y = _obj(session, "p"), _obj(session, "y")
        session.add_statements([AddrOf(p, FieldRef(y, ()))])
        assert result.points_to_names(p) == {"x", "y"}
        assert session.program.global_stmts[-1].lhs is p

    def test_add_statements_unknown_function_raises(self):
        session = AnalysisSession.from_c(SRC)
        p, y = _obj(session, "p"), _obj(session, "y")
        with pytest.raises(KeyError):
            session.add_statements(
                [AddrOf(p, FieldRef(y, ()))], function="nope"
            )

    def test_engine_add_statements_requires_solve(self):
        from repro.core.engine import Engine

        program = program_from_c(SRC)
        engine = Engine(program, CommonInitialSequence())
        with pytest.raises(RuntimeError):
            engine.add_statements([])

    def test_solve_after_growth_sees_grown_program(self):
        session = AnalysisSession.from_c(SRC)
        p, y = _obj(session, "p"), _obj(session, "y")
        session.add_statements([AddrOf(p, FieldRef(y, ()))], function="main")
        # A strategy solved only after the growth still sees everything.
        late = session.solve(Offsets())
        assert late.points_to_names(p) == {"x", "y"}
        assert late.stats.incremental_solves == 0


class TestWorklistPolicies:
    def test_registry(self):
        assert WORKLISTS["priority"] is PriorityWorklist
        assert WORKLISTS["fifo"] is FifoWorklist

    @pytest.mark.parametrize("cls", ALL_STRATEGIES)
    def test_fifo_reaches_same_fixpoint(self, cls):
        """Order independence: FIFO and priority drains agree exactly on
        the fixpoint and on every order-independent counter."""
        from repro.bench.harness import _UNGATED_STATS

        program = program_from_c(SRC)
        prio = analyze(program, cls())
        fifo = analyze(program, cls(), worklist="fifo")
        assert set(prio.facts.all_facts()) == set(fifo.facts.all_facts())
        gated = lambda s: {
            k: v for k, v in s.as_dict().items() if k not in _UNGATED_STATS
        }
        assert gated(prio.stats) == gated(fifo.stats)

    def test_worklist_instance_accepted(self):
        program = program_from_c(SRC)
        result = analyze(program, CommonInitialSequence(), worklist=FifoWorklist())
        p = result.program.objects.lookup("p")
        assert result.points_to_names(p) == {"x"}


class TestBackendPinning:
    """The session resolves its backend ONCE, at construction: a
    mid-process change of $REPRO_BACKEND must not let one session mix
    backends across solves."""

    def test_env_backend_resolved_at_construction(self, monkeypatch):
        from repro.core.backend import ENV_VAR

        monkeypatch.setenv(ENV_VAR, "bigint")
        session = AnalysisSession.from_c(SRC)
        assert session.backend == "bigint"
        monkeypatch.setenv(ENV_VAR, "diffprop")
        result = session.solve(CommonInitialSequence())
        assert result.stats.backend == "bigint"
        # A second strategy on the same session: still the pinned one.
        result2 = session.solve(CollapseAlways())
        assert result2.stats.backend == "bigint"

    def test_default_resolves_to_concrete_name(self, monkeypatch):
        from repro.core.backend import DEFAULT_BACKEND, ENV_VAR

        monkeypatch.delenv(ENV_VAR, raising=False)
        session = AnalysisSession.from_c(SRC)
        assert session.backend == DEFAULT_BACKEND

    def test_explicit_name_still_wins_per_solve(self):
        session = AnalysisSession.from_c(SRC, backend="bigint")
        result = session.solve(CommonInitialSequence(), backend="diffprop")
        assert result.stats.backend == "diffprop"

    def test_bad_env_backend_fails_at_construction(self, monkeypatch):
        from repro.core.backend import ENV_VAR

        monkeypatch.setenv(ENV_VAR, "nope")
        with pytest.raises(KeyError):
            AnalysisSession.from_c(SRC)
