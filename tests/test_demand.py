"""Demand-driven solving (:mod:`repro.core.demand`): the differential gate.

The demand solver's whole contract is one sentence: for every queried
ref, its answer equals the exhaustive fixpoint's.  This file gates that
sentence the same way the backend layer is gated — a differential
matrix over the entire benchmark suite, all four strategies, strict and
lenient front ends — plus targeted tests for the two mechanisms the
sweep alone would not distinguish:

- *narrowing*: on separable programs the demand solve must install
  strictly fewer statements than the program has (otherwise it is just
  a slow exhaustive solve);
- *widening*: queries that escape the demanded fragment — indirect
  calls, address-taken function params (Assumption-1 havoc through
  extern summaries like qsort), lenient-mode ``$havoc`` objects — must
  flip ``widened`` and still produce exhaustive answers.
"""

from __future__ import annotations

import pytest

from repro import analyze, program_from_c
from repro.core import STRATEGY_BY_KEY
from repro.core.demand import query_refs, solve_demand
from repro.diag import DiagnosticSink
from repro.ir.objects import ObjKind
from repro.ir.refs import FieldRef
from repro.suite.registry import SUITE, load_source

STRATEGY_KEYS = sorted(STRATEGY_BY_KEY)
SUITE_NAMES = [bp.name for bp in SUITE]

# Parse-once / solve-once caches, keyed by (name, strict[, strategy]).
_programs: dict = {}
_strategies: dict = {}
_exhaustive: dict = {}


def _program(name: str, strict: bool):
    prog = _programs.get((name, strict))
    if prog is None:
        bp = next(p for p in SUITE if p.name == name)
        prog = _programs[(name, strict)] = program_from_c(
            load_source(bp), name=name, strict=strict,
            diagnostics=DiagnosticSink(),
        )
    return prog


def _strategy(key: str):
    st = _strategies.get(key)
    if st is None:
        st = _strategies[key] = STRATEGY_BY_KEY[key]()
    return st


def _exhaustive_result(name: str, strict: bool, key: str):
    res = _exhaustive.get((name, strict, key))
    if res is None:
        res = _exhaustive[(name, strict, key)] = analyze(
            _program(name, strict), _strategy(key)
        )
    return res


def _queryable_objects(prog):
    """Every object a client could name (functions point to nothing)."""
    return [o for o in prog.objects.all_objects()
            if o.kind is not ObjKind.FUNCTION]


# ---------------------------------------------------------------------------
# The gate: suite x strategies x strict/lenient, every object queried.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("strict", [True, False], ids=["strict", "lenient"])
@pytest.mark.parametrize("key", STRATEGY_KEYS)
@pytest.mark.parametrize("name", SUITE_NAMES)
def test_demand_equals_exhaustive(name, key, strict) -> None:
    prog = _program(name, strict)
    strategy = _strategy(key)
    exhaustive = _exhaustive_result(name, strict, key)
    objs = _queryable_objects(prog)
    dres = solve_demand(prog, strategy, objs)
    for obj in objs:
        ref = FieldRef(obj, ())
        assert dres.points_to(ref) == exhaustive.points_to(ref), (
            name, key, strict, obj.name)


@pytest.mark.parametrize("name", SUITE_NAMES)
def test_single_pointer_queries(name) -> None:
    """Narrow one-object demands (the common client shape) also agree."""
    prog = _program(name, True)
    strategy = _strategy("common_initial_sequence")
    exhaustive = _exhaustive_result(name, True, "common_initial_sequence")
    candidates = sorted(_queryable_objects(prog), key=lambda o: o.name)
    picks = {candidates[0], candidates[len(candidates) // 2], candidates[-1]}
    for obj in picks:
        dres = solve_demand(prog, strategy, [obj])
        ref = FieldRef(obj, ())
        assert dres.points_to(ref) == exhaustive.points_to(ref), (name, obj.name)
        assert dres.stats.demanded_facts == dres.facts.edge_count()


# ---------------------------------------------------------------------------
# Narrowing: separable programs must not pay for the other half.
# ---------------------------------------------------------------------------
_SEPARABLE = """
int x, y, z;
int *p, *q, *r;
void main(void) {
    p = &x;
    q = &y;
    r = &z;
}
"""


def test_demand_installs_a_strict_subset() -> None:
    prog = program_from_c(_SEPARABLE, name="sep.c")
    strategy = _strategy("common_initial_sequence")
    p = prog.objects.lookup("p")
    dres = solve_demand(prog, strategy, [p])
    assert not dres.widened
    assert dres.installed < prog.stmt_count()
    assert dres.points_to_names(FieldRef(p, ())) == {"x"}
    # The facts the solve skipped really are absent (narrow, not lazy).
    assert dres.facts.edge_count() < analyze(prog, strategy).facts.edge_count()


def test_query_refs_rejects_foreign_objects() -> None:
    prog = program_from_c(_SEPARABLE, name="sep.c")
    other = program_from_c("int w;", name="other.c")
    with pytest.raises(KeyError):
        query_refs(prog, [other.objects.lookup("w")])


# ---------------------------------------------------------------------------
# Widening: escapes of the demanded fragment.
# ---------------------------------------------------------------------------
_INDIRECT = """
int x;
int *h(void) { return &x; }
int *(*hp)(void);
int *r;
void main(void) {
    hp = &h;
    r = hp();
}
"""


def test_indirect_call_widens() -> None:
    prog = program_from_c(_INDIRECT, name="ind.c")
    strategy = _strategy("common_initial_sequence")
    exhaustive = analyze(prog, strategy)
    r = prog.objects.lookup("r")
    dres = solve_demand(prog, strategy, [r])
    assert dres.widened
    assert dres.stats.demand_widenings == 1
    ref = FieldRef(r, ())
    assert dres.points_to(ref) == exhaustive.points_to(ref)
    # A widened solve IS the exhaustive fixpoint.
    assert dres.facts.edge_count() == exhaustive.facts.edge_count()


_ESCAPED_PARAM = """
int x;
void f(int **a) { *a = &x; }
void (*fp)(int **);
int *held;
void main(void) {
    fp = &f;
    f(&held);
}
"""


def test_address_taken_param_widens() -> None:
    """Params of address-taken functions can be written through paths
    the backward walk cannot see (indirect calls, qsort-style extern
    summaries) — demanding one must widen, and still be exact."""
    prog = program_from_c(_ESCAPED_PARAM, name="esc.c")
    strategy = _strategy("common_initial_sequence")
    exhaustive = analyze(prog, strategy)
    param = next(o for o in prog.objects.all_objects()
                 if o.kind is ObjKind.PARAM and o.name.startswith("f::"))
    dres = solve_demand(prog, strategy, [param])
    assert dres.widened
    ref = FieldRef(param, ())
    assert dres.points_to(ref) == exhaustive.points_to(ref)


def test_lenient_havoc_widens() -> None:
    """Demanding an object fed by a lenient-mode havoc object widens."""
    from repro.ctype import types as T
    from repro.ir.program import FunctionInfo, Program
    from repro.ir.stmts import Copy

    prog = Program("havoc")
    int_ptr = T.PointerType(T.int_t)
    p = prog.objects.global_var("p", int_ptr)
    fobj = prog.objects.function("f", T.FunctionType(T.void))
    hv = prog.objects.havoc("f", int_ptr)
    info = FunctionInfo(name="f", obj=fobj)
    info.stmts.append(Copy(p, FieldRef(hv, ()), fn="f"))
    prog.add_function(info)
    strategy = STRATEGY_BY_KEY["common_initial_sequence"]()
    dres = solve_demand(prog, strategy, [p])
    assert dres.widened
    assert dres.stats.demand_widenings == 1
    assert dres.points_to(FieldRef(p, ())) == analyze(
        prog, strategy).points_to(FieldRef(p, ()))
