"""App-level tests for the analysis service (no sockets).

:class:`repro.service.app.ServiceApp` maps requests to JSON responses
without HTTP, so the session lifecycle, the pool's LRU/byte-budget
semantics, the delta codec, the query surface, and the error model are
all tested here directly; ``tests/test_service_http.py`` covers the
wire (concurrency, fuzz-over-HTTP, the ``serve`` CLI).
"""

from __future__ import annotations

import pytest

from repro.service import ServiceApp, ServiceConfig, ServiceError
from repro.service.codec import resolve_ref, statements_from_json
from repro.service.pool import SessionPool

SRC = """
struct S { int *s1; int *s2; } s;
int x, y, *p;
void main(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }
"""


@pytest.fixture
def app():
    return ServiceApp(ServiceConfig(pool_size=4))


def create(app, source=SRC, **fields):
    status, payload = app.handle("POST", "/v1/sessions", None,
                                 {"source": source, **fields})
    assert status == 201, payload
    return payload


class TestLifecycle:
    def test_create_returns_session_document(self, app):
        doc = create(app, name="unit.c")["session"]
        assert doc["name"] == "unit.c"
        assert doc["functions"] == ["main"]
        assert doc["statements"] > 0
        assert doc["strict"] is True
        assert doc["solved"] == []          # solves happen on query
        assert doc["diagnostics"]["total"] == 0

    def test_get_and_list(self, app):
        sid = create(app)["session"]["id"]
        status, payload = app.handle("GET", f"/v1/sessions/{sid}")
        assert status == 200 and payload["session"]["id"] == sid
        status, payload = app.handle("GET", "/v1/sessions")
        assert [d["id"] for d in payload["sessions"]] == [sid]

    def test_points_to_query(self, app):
        sid = create(app)["session"]["id"]
        status, q = app.handle("GET", f"/v1/sessions/{sid}/query",
                               {"kind": "points_to", "target": "p"})
        assert status == 200
        assert q["names"] == ["x"]
        assert q["strategy"] == "common_initial_sequence"

    def test_field_query_and_strategy_override(self, app):
        sid = create(app)["session"]["id"]
        _, q = app.handle("GET", f"/v1/sessions/{sid}/query",
                          {"kind": "points_to", "target": "s.s2"})
        assert q["names"] == ["y"]
        # collapse_always merges the struct: p sees both targets.
        _, q = app.handle("GET", f"/v1/sessions/{sid}/query",
                          {"kind": "points_to", "target": "p",
                           "strategy": "collapse_always"})
        assert q["names"] == ["x", "y"]

    def test_delta_grows_cached_result(self, app):
        sid = create(app)["session"]["id"]
        app.handle("GET", f"/v1/sessions/{sid}/query",
                   {"kind": "points_to", "target": "p"})
        status, r = app.handle(
            "POST", f"/v1/sessions/{sid}/statements", None,
            {"function": "main",
             "statements": [{"form": "addrof", "lhs": "p", "target": "y"}]},
        )
        assert status == 200
        assert r["added"] == 1 and r["engines_resolved"] == 1
        _, q = app.handle("GET", f"/v1/sessions/{sid}/query",
                          {"kind": "points_to", "target": "p"})
        assert q["names"] == ["x", "y"]

    def test_delete_then_404(self, app):
        sid = create(app)["session"]["id"]
        status, payload = app.handle("DELETE", f"/v1/sessions/{sid}")
        assert status == 200 and payload["deleted"] == sid
        status, payload = app.handle("GET", f"/v1/sessions/{sid}")
        assert status == 404
        assert payload["error"]["kind"] == "unknown-session"

    def test_query_cache_hit_counters(self, app):
        sid = create(app)["session"]["id"]
        for _ in range(3):
            app.handle("GET", f"/v1/sessions/{sid}/query",
                       {"kind": "points_to", "target": "p"})
        assert app.counters.solves == 1
        assert app.counters.solve_cache_hits == 2


class TestQueries:
    SRC_CALLS = """
    int g, *p;
    void callee(void) { p = &g; }
    void (*fp)(void);
    void main(void) { fp = callee; (*fp)(); }
    """

    def test_alias(self, app):
        sid = create(app)["session"]["id"]
        _, q = app.handle("GET", f"/v1/sessions/{sid}/query",
                          {"kind": "alias", "a": "p", "b": "s.s1"})
        assert q["may_alias"] is True and q["may_point_to_same"] is True
        _, q = app.handle("GET", f"/v1/sessions/{sid}/query",
                          {"kind": "alias", "a": "p", "b": "s.s2"})
        assert q["may_alias"] is False

    def test_callgraph_resolves_function_pointer(self, app):
        sid = create(app, source=self.SRC_CALLS)["session"]["id"]
        _, q = app.handle("GET", f"/v1/sessions/{sid}/query",
                          {"kind": "callgraph"})
        assert q["edges"]["main"] == ["callee"]
        [site] = q["indirect_sites"]
        assert site["targets"] == ["callee"]

    def test_modref(self, app):
        sid = create(app, source=self.SRC_CALLS)["session"]["id"]
        _, q = app.handle("GET", f"/v1/sessions/{sid}/query",
                          {"kind": "modref", "function": "main"})
        # main transitively modifies p through the indirect call.
        assert "p" in q["functions"]["main"]["mod"]

    def test_derefs(self, app):
        sid = create(app, source=self.SRC_CALLS)["session"]["id"]
        _, q = app.handle("GET", f"/v1/sessions/{sid}/query",
                          {"kind": "derefs"})
        assert q["count"] >= 1 and q["average"] >= 1.0

    def test_diagnostics_endpoint(self, app):
        doc = create(app, source="int *p; int g;\n"
                     "void main(void) { p = &g; g = g.oops; }",
                     strict=False)
        sid = doc["session"]["id"]
        status, d = app.handle("GET", f"/v1/sessions/{sid}/diagnostics")
        assert status == 200
        assert d["by_kind"] == {"member-on-non-struct": 1}
        [rec] = d["records"]
        assert rec["severity"] == "ERROR" and rec["line"] == 2


class TestErrorModel:
    def test_strict_hostile_input_is_422_with_diagnostics(self, app):
        status, payload = app.handle("POST", "/v1/sessions", None,
                                     {"source": "int x = ;"})
        assert status == 422
        err = payload["error"]
        assert err["kind"] == "analysis-failed"
        assert err["diagnostics"][0]["severity"] in ("ERROR", "FATAL")

    def test_lenient_fatal_is_still_422(self, app):
        status, payload = app.handle("POST", "/v1/sessions", None,
                                     {"source": "int x = ;", "strict": False})
        assert status == 422
        assert payload["error"]["diagnostics"][0]["severity"] == "FATAL"

    def test_missing_source_field(self, app):
        status, payload = app.handle("POST", "/v1/sessions", None, {})
        assert status == 400
        assert payload["error"]["kind"] == "bad-request"

    def test_unknown_strategy_abi_backend(self, app):
        for fields in ({"strategy": "nope"}, {"abi": "pdp11"},
                       {"backend": "nope"}):
            status, payload = app.handle("POST", "/v1/sessions", None,
                                         {"source": SRC, **fields})
            assert status == 400, fields
            assert payload["error"]["kind"] == "bad-request"

    def test_unknown_endpoint_and_method(self, app):
        status, payload = app.handle("GET", "/v2/nope")
        assert status == 404
        assert payload["error"]["kind"] == "unknown-endpoint"
        status, payload = app.handle("DELETE", "/healthz")
        assert status == 405
        assert payload["error"]["kind"] == "method-not-allowed"

    def test_unknown_query_object_is_422(self, app):
        sid = create(app)["session"]["id"]
        status, payload = app.handle("GET", f"/v1/sessions/{sid}/query",
                                     {"kind": "points_to", "target": "zzz"})
        assert status == 422
        assert payload["error"]["kind"] == "unknown-object"

    def test_bad_delta_applies_nothing(self, app):
        sid = create(app)["session"]["id"]
        before = app.handle("GET", f"/v1/sessions/{sid}")[1]["session"]
        status, payload = app.handle(
            "POST", f"/v1/sessions/{sid}/statements", None,
            {"statements": [
                {"form": "addrof", "lhs": "p", "target": "y"},
                {"form": "warp", "lhs": "p"},          # decode fails here
            ]},
        )
        assert status == 422
        assert payload["error"]["kind"] == "bad-statement"
        after = app.handle("GET", f"/v1/sessions/{sid}")[1]["session"]
        assert after["statements"] == before["statements"]  # all-or-nothing

    def test_delta_unknown_function(self, app):
        sid = create(app)["session"]["id"]
        status, payload = app.handle(
            "POST", f"/v1/sessions/{sid}/statements", None,
            {"function": "nope",
             "statements": [{"form": "load", "lhs": "p", "ptr": "p"}]},
        )
        assert status == 422
        assert payload["error"]["kind"] == "unknown-object"


class TestPool:
    def test_lru_eviction_under_tiny_cap(self):
        app = ServiceApp(ServiceConfig(pool_size=2))
        s1 = create(app)["session"]["id"]
        s2 = create(app)["session"]["id"]
        doc = create(app)                    # pool full: evicts s1 (LRU)
        assert doc["evicted"] == [s1]
        s3 = doc["session"]["id"]
        assert app.handle("GET", f"/v1/sessions/{s1}")[0] == 404
        # Touch s2 so s3 becomes LRU; next create must evict s3.
        app.handle("GET", f"/v1/sessions/{s2}")
        doc = create(app)
        assert doc["evicted"] == [s3]
        assert app.pool.counters()["evictions"] == 2
        assert app.pool.counters()["sessions_live"] == 2

    def test_byte_budget_eviction(self):
        app = ServiceApp(ServiceConfig(pool_size=100, byte_budget=60_000))
        ids = [create(app)["session"]["id"] for _ in range(4)]
        counters = app.pool.counters()
        assert counters["evictions"] >= 1
        assert counters["bytes_live"] <= 60_000
        # The newest session always survives its own admission.
        assert app.handle("GET", f"/v1/sessions/{ids[-1]}")[0] == 200

    def test_single_giant_session_survives_alone(self):
        # One session over the whole budget must not be evicted for
        # being alone — only older tenants make room.
        app = ServiceApp(ServiceConfig(pool_size=4, byte_budget=1))
        sid = create(app)["session"]["id"]
        assert app.handle("GET", f"/v1/sessions/{sid}")[0] == 200
        sid2 = create(app)["session"]["id"]
        assert app.handle("GET", f"/v1/sessions/{sid}")[0] == 404
        assert app.handle("GET", f"/v1/sessions/{sid2}")[0] == 200

    def test_pool_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            SessionPool(capacity=0)


class TestMetricsSchema:
    def test_healthz(self, app):
        status, h = app.handle("GET", "/healthz")
        assert status == 200
        assert h["status"] == "ok"
        assert h["sessions_live"] == 0
        assert h["uptime_seconds"] >= 0

    def test_metrics_schema(self, app):
        sid = create(app, name="m.c")["session"]["id"]
        app.handle("GET", f"/v1/sessions/{sid}/query",
                   {"kind": "points_to", "target": "p"})
        status, m = app.handle("GET", "/metrics")
        assert status == 200
        server = m["server"]
        for key in ("sessions_live", "sessions_created", "evictions",
                    "checkouts", "misses", "bytes_live", "pool_capacity",
                    "byte_budget", "requests", "responses_by_status",
                    "solves", "solve_cache_hits", "internal_errors",
                    "uptime_seconds"):
            assert key in server, key
        assert server["sessions_live"] == 1
        assert server["requests"]["POST /v1/sessions"] == 1
        assert server["requests"]["GET /v1/sessions/{id}/query"] == 1
        [sess] = m["sessions"]
        assert sess["id"] == sid and sess["name"] == "m.c"
        [result] = sess["results"]          # the obs metrics() record
        assert result["strategy"] == "common_initial_sequence"
        assert "stats" in result and "facts" in result

    def test_metrics_serializes_to_json(self, app):
        import json

        sid = create(app)["session"]["id"]
        app.handle("GET", f"/v1/sessions/{sid}/query",
                   {"kind": "points_to", "target": "p"})
        _, m = app.handle("GET", "/metrics")
        json.dumps(m, sort_keys=True, default=str)   # must not raise


class TestCodec:
    @pytest.fixture
    def program(self):
        from repro import program_from_c

        return program_from_c(SRC, name="codec.c")

    def test_every_form_decodes(self, program):
        stmts = statements_from_json(program, [
            {"form": "addrof", "lhs": "p", "target": "y"},
            {"form": "copy", "lhs": "p", "rhs": "s", "path": ["s1"]},
            {"form": "load", "lhs": "p", "ptr": "p"},
            {"form": "store", "ptr": "p", "rhs": "x"},
            {"form": "fieldaddr", "lhs": "p", "ptr": "p", "path": ["s1"]},
            {"form": "ptrarith", "lhs": "p", "operands": ["p", "x"]},
        ], function="main")
        assert len(stmts) == 6
        assert all(st.fn == "main" for st in stmts)

    def test_function_scoped_name_resolution(self):
        from repro import program_from_c

        program = program_from_c(
            "int g;\nvoid main(void) { int *q; q = &g; }", name="scope.c"
        )
        [st] = statements_from_json(
            program, [{"form": "addrof", "lhs": "q", "target": "g"}],
            function="main",
        )
        assert st.lhs.name == "main::q"     # resolved through main::

    def test_fieldaddr_requires_path(self, program):
        with pytest.raises(ServiceError) as exc:
            statements_from_json(program, [
                {"form": "fieldaddr", "lhs": "p", "ptr": "p", "path": []}
            ])
        assert exc.value.kind == "bad-statement"

    def test_unknown_object(self, program):
        with pytest.raises(ServiceError) as exc:
            statements_from_json(program, [
                {"form": "load", "lhs": "zzz", "ptr": "p"}
            ])
        assert exc.value.status == 422
        assert exc.value.kind == "unknown-object"

    def test_resolve_ref_paths(self, program):
        ref = resolve_ref(program, "s.s2")
        assert ref.obj.name == "s" and ref.path == ("s2",)


class TestConfig:
    def test_bad_backend_fails_at_construction(self):
        with pytest.raises(KeyError):
            ServiceConfig(backend="nope")

    def test_bad_strategy_fails_at_construction(self):
        with pytest.raises(KeyError):
            ServiceConfig(default_strategy="nope")

    def test_bad_abi_fails_at_construction(self):
        with pytest.raises(KeyError):
            ServiceConfig(default_abi="pdp11")


class TestQueryFootprint:
    """The byte-budget bugfix: query-driven solves must re-measure."""

    def test_query_driven_solve_grows_bytes_estimate(self):
        app = ServiceApp(ServiceConfig(pool_size=4))
        sid = create(app)["session"]["id"]
        entry = app.pool.checkout(sid)
        before = entry.bytes_estimate
        status, _ = app.handle(
            "GET", f"/v1/sessions/{sid}/query", {"target": "p"})
        assert status == 200
        assert entry.bytes_estimate > before

    def test_query_driven_solve_triggers_eviction(self):
        """A query's FIRST solve of a new strategy can push the pool
        past its byte budget: eviction must fire on the query itself,
        not wait for some later delta."""
        budget = 40_000
        app = ServiceApp(ServiceConfig(pool_size=100, byte_budget=budget))
        ids = []
        while app.pool.counters()["evictions"] == 0 and len(ids) < 32:
            sid = create(app)["session"]["id"]
            ids.append(sid)
            status, _ = app.handle(
                "GET", f"/v1/sessions/{sid}/query", {"target": "p"})
            if status != 200:
                break
        counters = app.pool.counters()
        assert counters["evictions"] >= 1
        assert counters["bytes_live"] <= budget

    def test_failed_query_still_remeasures(self):
        """A 4xx out of the handler (unknown target) must not skip the
        re-measurement the triggering solve made necessary."""
        app = ServiceApp(ServiceConfig(pool_size=4))
        sid = create(app)["session"]["id"]
        entry = app.pool.checkout(sid)
        before = entry.bytes_estimate
        status, payload = app.handle(
            "GET", f"/v1/sessions/{sid}/query", {"target": "no_such_var"})
        assert status == 422
        assert payload["error"]["kind"] == "unknown-object"
        # The solve ran (and grew the session) before the target failed
        # to resolve; the footprint must reflect it anyway.
        assert entry.bytes_estimate > before


class TestDemandQueries:
    def test_demand_points_to_matches_exhaustive(self):
        app = ServiceApp(ServiceConfig(pool_size=4))
        sid = create(app)["session"]["id"]
        status, full = app.handle(
            "GET", f"/v1/sessions/{sid}/query", {"target": "p"})
        sid2 = create(app)["session"]["id"]
        status2, dem = app.handle(
            "GET", f"/v1/sessions/{sid2}/query",
            {"target": "p", "demand": "1"})
        assert status == status2 == 200
        assert dem["points_to"] == full["points_to"]
        assert dem["names"] == full["names"]
        assert dem["demand"]["demanded_facts"] > 0
        assert "demand" not in full

    def test_demand_alias_round_trip(self):
        app = ServiceApp(ServiceConfig(pool_size=4))
        sid = create(app)["session"]["id"]
        status, payload = app.handle(
            "GET", f"/v1/sessions/{sid}/query",
            {"kind": "alias", "a": "p", "b": "s.s1", "demand": "true"})
        assert status == 200, payload
        assert payload["may_point_to_same"] is True
        assert "demand" in payload

    def test_demand_ignored_for_whole_program_kinds(self):
        app = ServiceApp(ServiceConfig(pool_size=4))
        sid = create(app)["session"]["id"]
        status, payload = app.handle(
            "GET", f"/v1/sessions/{sid}/query",
            {"kind": "callgraph", "demand": "1"})
        assert status == 200
        assert "demand" not in payload

    def test_demand_bad_target_is_structured(self):
        app = ServiceApp(ServiceConfig(pool_size=4))
        sid = create(app)["session"]["id"]
        status, payload = app.handle(
            "GET", f"/v1/sessions/{sid}/query",
            {"target": "ghost", "demand": "1"})
        assert status == 422
        assert payload["error"]["kind"] == "unknown-object"


class TestServiceStore:
    def test_sessions_share_the_store_across_processes(self, tmp_path):
        """Simulated restart: a second app over the same store directory
        warm-starts the same program instead of re-solving."""
        config = ServiceConfig(pool_size=4, store=str(tmp_path))
        app1 = ServiceApp(config)
        sid = create(app1)["session"]["id"]
        status, cold = app1.handle(
            "GET", f"/v1/sessions/{sid}/query", {"target": "p"})
        assert status == 200

        app2 = ServiceApp(ServiceConfig(pool_size=4, store=str(tmp_path)))
        sid2 = create(app2)["session"]["id"]
        status, warm = app2.handle(
            "GET", f"/v1/sessions/{sid2}/query", {"target": "p"})
        assert status == 200
        assert warm["points_to"] == cold["points_to"]
        entry = app2.pool.checkout(sid2)
        assert entry.session.store_hits == 1
        doc = app2.handle("GET", f"/v1/sessions/{sid2}")[1]["session"]
        assert doc["store"]["hits"] == 1
