"""Propagation-backend microbenchmarks across every registered backend
(bigint, diffprop, numpy, codegen, accel — ``BACKEND_KEYS`` tracks the
registry automatically).

Times each backend on the largest suite programs (where backend choice
matters most) plus a synthetic copy-chain program large enough to push
the numpy backend into its dense rounds.  ``test_backend_speedup``
prints the per-program comparison table and asserts the economics the
backend layer exists for: no specialized backend loses badly to the
bigint reference, and the compiled drain rung at least matches it.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -q

(add ``--benchmark-columns=min,mean`` for tighter tables).
"""

import time

import pytest

from repro.core import STRATEGY_BY_KEY, analyze
from repro.core.backend import BACKENDS, NumpyBackend, available_numpy
from repro import program_from_c

from conftest import cached_program

#: The five slowest suite measurements in the committed baseline.
HEAVY = ["bc", "li", "flex247", "twig", "ul"]
BACKEND_KEYS = sorted(BACKENDS)


@pytest.mark.parametrize("backend", BACKEND_KEYS)
@pytest.mark.parametrize("name", HEAVY)
def test_solve_time_per_backend(benchmark, name, backend):
    """Raw pytest-benchmark timing: one heavy program, one backend."""
    program = cached_program(name)
    strategy = STRATEGY_BY_KEY["collapse_on_cast"]
    benchmark(lambda: analyze(program, strategy(), backend=backend))


def _synthetic_chain(n_chains: int = 12, depth: int = 24) -> str:
    """A wide copy-DAG program: many long struct-copy chains fed from a
    shared pointer pool — enough refs/edges for dense rounds to engage."""
    lines = ["struct S { int *p; int *q; int *r; };"]
    lines += [f"int g{i};" for i in range(n_chains)]
    for c in range(n_chains):
        lines += [f"struct S n{c}_{d};" for d in range(depth)]
    lines.append("void main(void) {")
    for c in range(n_chains):
        lines.append(f"    n{c}_0.p = &g{c};")
        lines.append(f"    n{c}_0.q = &g{(c + 1) % n_chains};")
        for d in range(1, depth):
            lines.append(f"    n{c}_{d} = n{c}_{d - 1};")
        # Cross-links between chains widen the propagation fan-out.
        lines.append(f"    n{(c + 1) % n_chains}_0.r = n{c}_{depth - 1}.p;")
    lines.append("}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def chain_program():
    return program_from_c(_synthetic_chain(), name="chain.c")


@pytest.mark.parametrize("backend", BACKEND_KEYS)
def test_synthetic_chain_per_backend(benchmark, chain_program, backend):
    strategy = STRATEGY_BY_KEY["common_initial_sequence"]
    be = (
        NumpyBackend(min_dense_refs=0) if backend == "numpy" else backend
    )
    benchmark(lambda: analyze(chain_program, strategy(), backend=be))


def test_numpy_dense_rounds_engage(chain_program):
    """The synthetic program is big enough to run dense rounds."""
    if available_numpy() is None:  # pragma: no cover - env-dependent
        pytest.skip("numpy not importable")
    res = analyze(
        chain_program,
        STRATEGY_BY_KEY["common_initial_sequence"](),
        backend=NumpyBackend(min_dense_refs=0),
    )
    assert res.stats.dense_rounds > 0


def test_backend_speedup():
    """Comparison table over the heavy programs.

    Timing methodology matches Figure 5: min of 3 solves per cell.
    Since the shared slow paths (resolve installation, interning,
    statement setup) were tightened, the scalar backends sit within a
    few percent of each other on these programs, so the assertions are
    deliberately loose (CI machines are noisy): no scalar backend may
    lose badly to bigint, and the compiled rung (codegen, or accel
    falling back to it) must at least match bigint within noise.
    """
    strategy_cls = STRATEGY_BY_KEY["collapse_on_cast"]
    sums = {be: 0.0 for be in BACKEND_KEYS}
    print()
    print(f"{'program':10s} " + " ".join(f"{be:>10s}" for be in BACKEND_KEYS))
    for name in HEAVY:
        program = cached_program(name)
        row = {}
        for be in BACKEND_KEYS:
            best = None
            for _ in range(3):
                t0 = time.perf_counter()
                analyze(program, strategy_cls(), backend=be)
                t = time.perf_counter() - t0
                best = t if best is None or t < best else best
            row[be] = best
            sums[be] += best
        print(f"{name:10s} " + " ".join(
            f"{row[be] * 1000:9.1f}ms" for be in BACKEND_KEYS))
    print(f"{'sum':10s} " + " ".join(
        f"{sums[be] * 1000:9.1f}ms" for be in BACKEND_KEYS))
    for be in ("diffprop", "codegen", "accel"):
        assert sums[be] < sums["bigint"] * 1.25, (be, sums)
    assert min(sums["codegen"], sums["accel"]) < sums["bigint"] * 1.15, sums
