"""Shared fixtures for the benchmark suite.

Programs are parsed once per session and shared across benchmarks; the
engines never mutate a Program, so reuse is safe.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import load_program
from repro.suite.registry import SUITE

_CACHE = {}


def cached_program(name: str):
    """Session-cached parsed+normalized suite program."""
    prog = _CACHE.get(name)
    if prog is None:
        bp = next(p for p in SUITE if p.name == name)
        prog = load_program(bp)
        _CACHE[name] = prog
    return prog


@pytest.fixture(scope="session")
def suite_programs():
    """name -> Program for the whole suite."""
    return {bp.name: cached_program(bp.name) for bp in SUITE}
