"""Scaling benchmarks over generated programs.

The paper reports wall-clock times on fixed benchmarks; these benches
characterize how each algorithm *scales* as program size grows, using the
seeded generator so results are reproducible.  Also compares the
framework's instances against the Steensgaard baseline, whose near-linear
behaviour is its selling point ([Ste96b], paper §6).
"""

import pytest

from repro.baselines import andersen, steensgaard
from repro.core import ALL_STRATEGIES, STRATEGY_BY_KEY, analyze
from repro.frontend import program_from_c
from repro.suite import GenConfig, generate_program

SIZES = [50, 150, 400]


def _generated(nstmts: int):
    cfg = GenConfig(
        n_structs=6,
        max_fields=5,
        n_scalars=10,
        n_pointers=10,
        n_struct_vars=8,
        n_statements=nstmts,
        cast_probability=0.4,
    )
    return program_from_c(generate_program(7, cfg), name=f"gen{nstmts}")


@pytest.fixture(scope="module")
def generated_programs():
    return {n: _generated(n) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("key", [c.key for c in ALL_STRATEGIES], ids=str)
def test_strategy_scaling(benchmark, generated_programs, n, key):
    program = generated_programs[n]
    benchmark(lambda: analyze(program, STRATEGY_BY_KEY[key]()))


@pytest.mark.parametrize("n", SIZES)
def test_steensgaard_scaling(benchmark, generated_programs, n):
    program = generated_programs[n]
    benchmark(lambda: steensgaard(program))


@pytest.mark.parametrize("n", SIZES)
def test_andersen_scaling(benchmark, generated_programs, n):
    program = generated_programs[n]
    benchmark(lambda: andersen(program))


def test_steensgaard_is_fastest_at_scale(generated_programs):
    """Sanity: at the largest size, unification beats inclusion analysis."""
    import time

    program = generated_programs[SIZES[-1]]

    def clock(fn):
        best = None
        for _ in range(3):
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            best = dt if best is None or dt < best else best
        return best

    t_steens = clock(lambda: steensgaard(program))
    t_cis = clock(lambda: analyze(program, STRATEGY_BY_KEY["common_initial_sequence"]()))
    print(f"\nsteensgaard={t_steens * 1000:.1f}ms  cis={t_cis * 1000:.1f}ms")
    assert t_steens < t_cis * 2.0  # unification should not be slower by much
