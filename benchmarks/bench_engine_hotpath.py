"""Microbenchmarks for the solver's hot path.

Times the primitives the delta-driven fixpoint engine leans on — fact
insertion, delta-batched drain over copy-edge chains, window-index
matching, and the memoized strategy layer — plus one end-to-end solve of
the largest suite program per strategy.  These targets track the
per-operation cost that ``BENCH_engine.json`` tracks end-to-end; refresh
that baseline with ``python -m repro.bench --write-baseline`` after
engine changes.

Run with ``pytest benchmarks/bench_engine_hotpath.py --benchmark-only``.
"""

import pytest

from repro.core import STRATEGY_BY_KEY, analyze
from repro.core.engine import Engine, _WindowIndex
from repro.core.facts import FactBase
from repro.core.offsets import Offsets
from repro.core.strategy import Window
from repro.ctype.types import int_t, ptr
from repro.ir.objects import ObjectFactory
from repro.ir.program import Program
from repro.ir.refs import FieldRef, OffsetRef

from conftest import cached_program


def _mk_refs(n, prefix="v"):
    objs = ObjectFactory()
    return [FieldRef(objs.global_var(f"{prefix}{i}", ptr(int_t))) for i in range(n)]


def test_factbase_add_throughput(benchmark):
    """Fresh-fact insertion: 200 sources x 50 targets."""
    srcs = _mk_refs(200, "s")
    dsts = _mk_refs(50, "d")

    def run():
        fb = FactBase()
        for s in srcs:
            for d in dsts:
                fb.add(s, d)
        return fb

    fb = benchmark(run)
    assert fb.edge_count() == 200 * 50


def test_factbase_duplicate_add(benchmark):
    """Duplicate suppression — the dominant case at fixpoint."""
    srcs = _mk_refs(100, "s")
    dsts = _mk_refs(20, "d")
    fb = FactBase()
    for s in srcs:
        for d in dsts:
            fb.add(s, d)

    def run():
        for s in srcs:
            for d in dsts:
                fb.add(s, d)

    benchmark(run)
    assert fb.edge_count() == 100 * 20


def test_drain_copy_edge_chain(benchmark):
    """Delta batching: 64 facts pushed through a 100-edge chain."""

    def run():
        program = Program()
        engine = Engine(program, STRATEGY_BY_KEY["collapse_on_cast"]())
        chain = [
            FieldRef(program.objects.global_var(f"c{i}", ptr(int_t)))
            for i in range(101)
        ]
        targets = [
            FieldRef(program.objects.global_var(f"t{i}", int_t))
            for i in range(64)
        ]
        for a, b in zip(chain, chain[1:]):
            engine.install_copy_edge(a, b)
        for t in targets:
            engine.add_fact(chain[0], t)
        engine.drain()
        return engine

    engine = benchmark(run)
    assert engine.facts.edge_count() == 101 * 64


def test_window_index_matching(benchmark):
    """Interval-index lookups against 64 windows of mixed extent."""
    index = _WindowIndex()
    objs = ObjectFactory()
    dst = objs.global_var("w_dst", int_t)
    for i in range(64):
        index.insert(i * 8, 8 + (i % 4) * 16, dst, i * 8)

    def run():
        hits = 0
        for off in range(0, 64 * 8, 4):
            hits += len(index.matches(off))
        return hits

    hits = benchmark(run)
    assert hits > 0


def test_window_drain(benchmark):
    """Facts flowing through byte windows under the Offsets strategy."""

    def run():
        program = Program()
        strategy = Offsets()
        engine = Engine(program, strategy)
        a = program.objects.global_var("wa", int_t)
        b = program.objects.global_var("wb", int_t)
        engine.install_window(Window(dst=OffsetRef(b, 0), src=OffsetRef(a, 0), size=4))
        for i in range(128):
            tgt = program.objects.global_var(f"wt{i}", int_t)
            engine.add_fact(OffsetRef(a, 0), OffsetRef(tgt, 0))
        engine.drain()
        return engine

    engine = benchmark(run)
    # Every fact at a+0 crossed the window to b+0.
    assert len(engine.facts.points_to(OffsetRef(
        engine.program.objects.lookup("wb"), 0))) == 128


@pytest.mark.parametrize("key", sorted(STRATEGY_BY_KEY), ids=str)
def test_strategy_memoized_solve(benchmark, key):
    """End-to-end solve of the largest suite program (memo caches warm
    within a run, cold across runs — each round builds a fresh strategy)."""
    program = cached_program("bc")
    benchmark(lambda: analyze(program, STRATEGY_BY_KEY[key]()))
