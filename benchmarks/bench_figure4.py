"""Figure 4: average points-to set size of a dereferenced pointer.

Regenerates the paper's key precision exhibit for the 12 structure-
casting programs under all four instances of the framework, with
Collapse Always facts expanded per-field for comparability.

The shape the paper reports (and this bench asserts):

- distinguishing fields matters — Collapse Always is at least twice as
  imprecise as the field-sensitive algorithms on several programs;
- portability is cheap — Collapse on Cast / Common Initial Sequence are
  usually close to (non-portable) Offsets;
- Common Initial Sequence is never worse than Collapse on Cast.
"""

import pytest

from repro.bench.harness import figure4, format_figure4
from repro.clients import deref_stats
from repro.core import ALL_STRATEGIES, STRATEGY_BY_KEY, analyze
from repro.suite.registry import casting_programs

from conftest import cached_program


def test_figure4_table(benchmark):
    rows = benchmark.pedantic(figure4, rounds=1, iterations=1)
    print()
    print(format_figure4(rows))

    assert len(rows) == 12
    ca_vs_cis = [
        r.averages["collapse_always"]
        / max(r.averages["common_initial_sequence"], 1e-9)
        for r in rows
        if r.averages["common_initial_sequence"] > 0
    ]
    # Paper: "in six cases, the sets produced by Collapse Always are at
    # least twice as large as the sets produced by the other algorithms".
    assert sum(ratio >= 2.0 for ratio in ca_vs_cis) >= 5

    for r in rows:
        # CIS refines CoC (same normalize/resolve, sharper lookup).
        assert (
            r.averages["common_initial_sequence"]
            <= r.averages["collapse_on_cast"] + 1e-9
        ), r.name


@pytest.mark.parametrize("bp", casting_programs(), ids=lambda b: b.name)
@pytest.mark.parametrize("key", [c.key for c in ALL_STRATEGIES], ids=str)
def test_deref_average_per_program(benchmark, bp, key):
    """Per-(program, algorithm) timing of analysis + Figure 4 metric."""
    program = cached_program(bp.name)

    def once():
        result = analyze(program, STRATEGY_BY_KEY[key]())
        return deref_stats(result).average

    avg = benchmark(once)
    assert avg >= 0.0
