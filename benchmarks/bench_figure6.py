"""Figure 6: total points-to edges, normalized to the Offsets algorithm.

The number of points-to facts is the paper's proxy for the space cost of
each algorithm (all four being instances of the same framework).  The
shape the paper reports, asserted below:

- the portable algorithms stay within small factors of Offsets on most
  programs (the paper: within 18% on all but three; worst cases ~2.6x
  for Collapse on Cast and +35% for Common Initial Sequence);
- on some programs the portable algorithms have *fewer* edges than
  Offsets, "due to the Offsets algorithm introducing nodes to represent
  offsets within structures that do not correspond to real fields" — our
  union-pool lisp interpreter (`li`) reproduces exactly that effect;
- Collapse Always sometimes has the fewest edges of all, which does NOT
  mean it is more precise: one collapsed fact stands for many per-field
  facts (paper footnote 8).
"""

import pytest

from repro.bench.harness import figure6, format_ratios
from repro.core import ALL_STRATEGIES, STRATEGY_BY_KEY, analyze
from repro.suite.registry import casting_programs

from conftest import cached_program


def test_figure6_table(benchmark):
    rows = benchmark.pedantic(figure6, rounds=1, iterations=1)
    print()
    print(format_ratios(rows, "Figure 6: points-to edge ratios", "edges"))

    norm = {r.name: r.normalized() for r in rows}
    # Portable algorithms stay within moderate factors of Offsets.
    for name, n in norm.items():
        assert n["collapse_on_cast"] < 6.0, name
        assert n["common_initial_sequence"] < 4.0, name
    # CIS never generates more edges than CoC.
    for name, n in norm.items():
        assert n["common_initial_sequence"] <= n["collapse_on_cast"] + 1e-9, name
    # The 130.li effect: some program has fewer portable edges than
    # Offsets edges.
    assert any(n["common_initial_sequence"] < 1.0 for n in norm.values())


@pytest.mark.parametrize("bp", casting_programs(), ids=lambda b: b.name)
@pytest.mark.parametrize("key", [c.key for c in ALL_STRATEGIES], ids=str)
def test_edge_count(benchmark, bp, key):
    """Edge-count measurement per (program, algorithm)."""
    program = cached_program(bp.name)

    def once():
        return analyze(program, STRATEGY_BY_KEY[key]()).facts.edge_count()

    edges = benchmark.pedantic(once, rounds=1, iterations=1)
    assert edges > 0
