"""Result-store microbenchmarks: cold solve vs. warm start.

Times the two halves of the repeat-query economics on the heaviest
suite programs: the cold path (full fixpoint solve) and the warm path
(:meth:`AnalysisSession.warm_start` — key the program, load the entry,
rebuild the fact base).  ``test_warm_start_speedup`` prints the
comparison table and asserts the economics the store exists for: on the
densest program a warm start is at least 5x faster than the solve it
replaces, and a warm start is never slower than solving (the failure
mode the distinct-ref table + bulk bitset rebuild was built to kill).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_store.py -q
"""

from __future__ import annotations

import time

import pytest

from repro import CommonInitialSequence
from repro.session import AnalysisSession
from repro.suite.registry import SUITE, load_source

#: The five slowest suite measurements in the committed baseline.
HEAVY = ["bc", "li", "flex247", "twig", "ul"]

#: Asserted on the densest program only; measured ~7-10x, floored at 5x
#: so CI-load noise cannot flake it.
MIN_SPEEDUP = 5.0

_SOURCES = {}


def _source(name: str) -> str:
    src = _SOURCES.get(name)
    if src is None:
        bp = next(p for p in SUITE if p.name == name)
        src = _SOURCES[name] = load_source(bp)
    return src


def _warmed_store(tmp_path, name: str) -> str:
    """A store directory holding the solved entry for ``name``."""
    store = str(tmp_path / name)
    session = AnalysisSession.from_c(_source(name), name=name, store=store)
    session.solve(CommonInitialSequence())
    return store


@pytest.mark.parametrize("name", HEAVY)
def test_cold_solve(benchmark, name):
    """Raw pytest-benchmark timing: the path a store hit replaces."""
    source = _source(name)

    def cold():
        session = AnalysisSession.from_c(source, name=name)
        session.solve(CommonInitialSequence())

    benchmark(cold)


@pytest.mark.parametrize("name", HEAVY)
def test_warm_start(benchmark, tmp_path, name):
    """Raw pytest-benchmark timing: key + load + fact-base rebuild."""
    store = _warmed_store(tmp_path, name)
    source = _source(name)

    def warm():
        session = AnalysisSession.from_c(source, name=name, store=store)
        assert session.warm_start(CommonInitialSequence()) is not None

    benchmark(warm)


def test_warm_start_speedup(tmp_path):
    """Comparison table over the heavy programs (min of 3 per cell,
    parse excluded from both sides — it is paid identically)."""
    strategy = CommonInitialSequence()
    print()
    print(f"{'program':10s} {'cold':>10s} {'warm':>10s} {'ratio':>7s}")
    ratios = {}
    for name in HEAVY:
        source = _source(name)
        store = _warmed_store(tmp_path, name)
        cold = warm = None
        for _ in range(3):
            session = AnalysisSession.from_c(source, name=name)
            t0 = time.perf_counter()
            session.solve(strategy)
            t = time.perf_counter() - t0
            cold = t if cold is None or t < cold else cold

            session = AnalysisSession.from_c(source, name=name, store=store)
            t0 = time.perf_counter()
            assert session.warm_start(strategy) is not None
            t = time.perf_counter() - t0
            warm = t if warm is None or t < warm else warm
        ratios[name] = cold / warm
        print(f"{name:10s} {cold * 1e3:8.1f}ms {warm * 1e3:8.1f}ms "
              f"{ratios[name]:6.1f}x")
    # The densest program shows the full economics; the rest must at
    # least never make a warm start a pessimization.
    assert ratios["bc"] >= MIN_SPEEDUP, ratios
    assert all(r > 1.0 for r in ratios.values()), ratios
