"""Figure 5: analysis-time ratios, normalized to the Offsets algorithm.

The paper's Figure 5 is a bar chart of per-program analysis times for the
four algorithms, normalized to Offsets.  The pytest-benchmark entries
below time each (program, algorithm) solve precisely;
``test_figure5_table`` prints the normalized table and asserts the
paper's qualitative claims:

- the casting-aware algorithms are usually within small factors of one
  another (the paper: within ~50% in all but two cases; worst case
  Collapse on Cast ≈ 4x Offsets);
- on at least one program the portable algorithms are *faster* than
  Offsets (the paper observed this for flex-2.4.7; our suite shows it on
  the union-pool lisp interpreter, where Offsets tracks more locations).
"""

import pytest

from repro.bench.harness import figure5, format_ratios
from repro.core import ALL_STRATEGIES, STRATEGY_BY_KEY, analyze
from repro.suite.registry import casting_programs

from conftest import cached_program


def test_figure5_table(benchmark):
    rows = benchmark.pedantic(lambda: figure5(repeats=3), rounds=1, iterations=1)
    print()
    print(format_ratios(rows, "Figure 5: analysis-time ratios", "seconds"))

    ratios = []
    for r in rows:
        norm = r.normalized()
        ratios.append((r.name, norm["collapse_on_cast"], norm["common_initial_sequence"]))
    # Worst-case slowdown of the portable algorithms stays moderate.
    worst = max(max(coc, cis) for _n, coc, cis in ratios)
    assert worst < 8.0
    # Most programs have all casting-aware algorithms within 4x.
    close = sum(1 for _n, coc, cis in ratios if coc < 4.0 and cis < 4.0)
    assert close >= len(ratios) - 2
    # At least one program where a portable algorithm beats Offsets.
    assert any(min(coc, cis) < 1.0 for _n, coc, cis in ratios)


@pytest.mark.parametrize("bp", casting_programs(), ids=lambda b: b.name)
@pytest.mark.parametrize("key", [c.key for c in ALL_STRATEGIES], ids=str)
def test_solve_time(benchmark, bp, key):
    """Raw pytest-benchmark timing of one (program, algorithm) solve."""
    program = cached_program(bp.name)
    benchmark(lambda: analyze(program, STRATEGY_BY_KEY[key]()))
