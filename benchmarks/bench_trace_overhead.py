"""Tracing must not tax the default path.

Two guards:

- ``test_untraced_vs_traced_*`` — a traced solve strictly does more work
  (provenance arenas, no cycle collapsing), so the *untraced* solve must
  stay at least as fast.  This is the bench-level assertion that the
  ``Engine(trace=True)`` opt-in did not leak cost into the hot path.
- ``test_traced_solve_*`` — pytest-benchmark targets for the traced
  solve itself, so provenance-recording regressions show up as numbers
  rather than as anecdotes.

Run with ``pytest benchmarks/bench_trace_overhead.py --benchmark-only``.
"""

from __future__ import annotations

import time

import pytest

from repro.core import STRATEGY_BY_KEY
from repro.core.engine import Engine

from conftest import cached_program

# Largest suite program paired with the cheapest and the most expensive
# strategies: overhead hides in small programs, so measure where the
# solve is long enough to be timeable.
CASES = [("bc", "collapse_always"), ("bc", "common_initial_sequence")]


def _min_solve(program, strategy_cls, *, trace, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        engine = Engine(program, strategy_cls(), trace=trace)
        t0 = time.perf_counter()
        engine.solve()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("name,key", CASES, ids=lambda v: str(v))
def test_untraced_not_slower_than_traced(name, key):
    program = cached_program(name)
    cls = STRATEGY_BY_KEY[key]
    untraced = _min_solve(program, cls, trace=False)
    traced = _min_solve(program, cls, trace=True)
    # Generous margin: the point is the *ordering* (tracing pays, the
    # default path doesn't), not a precise ratio on a noisy machine.
    assert untraced <= traced * 1.25, (
        f"untraced solve ({untraced * 1000:.1f}ms) slower than traced "
        f"({traced * 1000:.1f}ms) on {name}/{key}: tracing overhead has "
        f"leaked into the default path"
    )


@pytest.mark.parametrize("name,key", CASES, ids=lambda v: str(v))
def test_traced_solve_benchmark(benchmark, name, key):
    program = cached_program(name)
    cls = STRATEGY_BY_KEY[key]

    result = benchmark(lambda: Engine(program, cls(), trace=True).solve())
    assert result.tracer is not None
    assert len(result.tracer) == result.facts.edge_count()
