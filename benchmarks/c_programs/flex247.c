/* flex247 - scanner-generator core data structures.
 *
 * Stand-in for "flex-2.4.7" (the program where the paper notes the
 * portable algorithms actually ran *faster* than Offsets).  The idioms:
 * a byte-blob arena allocator handing out char* that callers cast to
 * typed records, plus DFA state/transition tables built from them.
 */

#define ARENA_SIZE 8192
#define MAXSTATES 64
#define MAXSYMS 32

struct arena {
    char bytes[ARENA_SIZE];
    int used;
};

struct transition {
    struct transition *next;
    int on_char;
    struct state *target;
};

struct state {
    int id;
    int accepting;
    struct transition *out;
    struct rule *rule;
};

struct rule {
    int id;
    char *pattern;
    int action_code;
};

static struct arena pool;
static struct state *states[MAXSTATES];
static int nstates;
static struct rule *rules[MAXSYMS];
static int nrules;

static char *arena_alloc(unsigned long n)
{
    char *p;

    /* round to pointer alignment */
    while ((pool.used % 8) != 0)
        pool.used++;
    if (pool.used + (int)n > ARENA_SIZE)
        return 0;
    p = &pool.bytes[pool.used];
    pool.used += (int)n;
    return p;
}

static struct state *new_state(void)
{
    struct state *s;

    s = (struct state *)arena_alloc(sizeof(struct state));
    if (s == 0)
        return 0;
    s->id = nstates;
    s->accepting = 0;
    s->out = 0;
    s->rule = 0;
    states[nstates] = s;
    nstates++;
    return s;
}

static struct rule *new_rule(char *pattern, int action)
{
    struct rule *r;

    r = (struct rule *)arena_alloc(sizeof(struct rule));
    if (r == 0)
        return 0;
    r->id = nrules;
    r->pattern = pattern;
    r->action_code = action;
    rules[nrules] = r;
    nrules++;
    return r;
}

static void add_transition(struct state *from, int c, struct state *to)
{
    struct transition *t;

    t = (struct transition *)arena_alloc(sizeof(struct transition));
    if (t == 0)
        return;
    t->on_char = c;
    t->target = to;
    t->next = from->out;
    from->out = t;
}

static struct state *step(struct state *s, int c)
{
    struct transition *t;

    for (t = s->out; t != 0; t = t->next) {
        if (t->on_char == c)
            return t->target;
    }
    return 0;
}

static struct rule *scan(struct state *start, char *text)
{
    struct state *cur;
    struct state *nxt;
    struct rule *last_accept;
    char *p;

    cur = start;
    last_accept = 0;
    for (p = text; *p != '\0'; p++) {
        nxt = step(cur, *p);
        if (nxt == 0)
            break;
        cur = nxt;
        if (cur->accepting)
            last_accept = cur->rule;
    }
    return last_accept;
}

static struct state *build_keyword(struct state *start, char *kw, struct rule *r)
{
    struct state *cur;
    struct state *nxt;
    char *p;

    cur = start;
    for (p = kw; *p != '\0'; p++) {
        nxt = step(cur, *p);
        if (nxt == 0) {
            nxt = new_state();
            if (nxt == 0)
                return cur;
            add_transition(cur, *p, nxt);
        }
        cur = nxt;
    }
    cur->accepting = 1;
    cur->rule = r;
    return cur;
}

static void dump_dfa(void)
{
    int i;
    struct transition *t;

    for (i = 0; i < nstates; i++) {
        printf("state %d%s:", states[i]->id,
               states[i]->accepting ? " (accept)" : "");
        for (t = states[i]->out; t != 0; t = t->next)
            printf(" %c->%d", t->on_char, t->target->id);
        printf("\n");
    }
}

/* ------------------------------------------------------------------ */
/* NFA layer: Thompson construction for a tiny regex language          */
/* (literals, concatenation, '|', '*'), then subset construction to a  */
/* DFA -- the heart of what flex does.  NFA states are carved from the */
/* same byte arena and share the casting idiom.                        */
/* ------------------------------------------------------------------ */

#define EPSILON 0
#define MAXNFA 128

struct nfa_state {
    int id;
    int on_char;                /* EPSILON or a literal */
    struct nfa_state *out1;
    struct nfa_state *out2;
    struct rule *accept_rule;
};

struct nfa_frag {
    struct nfa_state *start;
    struct nfa_state *end;      /* unique dangling accept-in-waiting */
};

static struct nfa_state *nfa_states[MAXNFA];
static int n_nfa;

static struct nfa_state *nfa_new(int c)
{
    struct nfa_state *s;

    s = (struct nfa_state *)arena_alloc(sizeof(struct nfa_state));
    if (s == 0)
        return 0;
    s->id = n_nfa;
    s->on_char = c;
    s->out1 = 0;
    s->out2 = 0;
    s->accept_rule = 0;
    if (n_nfa < MAXNFA)
        nfa_states[n_nfa] = s;
    n_nfa++;
    return s;
}

static struct nfa_frag frag_literal(int c)
{
    struct nfa_frag f;

    f.start = nfa_new(c);
    f.end = nfa_new(EPSILON);
    f.start->out1 = f.end;
    return f;
}

static struct nfa_frag frag_concat(struct nfa_frag a, struct nfa_frag b)
{
    struct nfa_frag f;

    a.end->out1 = b.start;
    f.start = a.start;
    f.end = b.end;
    return f;
}

static struct nfa_frag frag_alt(struct nfa_frag a, struct nfa_frag b)
{
    struct nfa_frag f;

    f.start = nfa_new(EPSILON);
    f.end = nfa_new(EPSILON);
    f.start->out1 = a.start;
    f.start->out2 = b.start;
    a.end->out1 = f.end;
    b.end->out1 = f.end;
    return f;
}

static struct nfa_frag frag_star(struct nfa_frag a)
{
    struct nfa_frag f;

    f.start = nfa_new(EPSILON);
    f.end = nfa_new(EPSILON);
    f.start->out1 = a.start;
    f.start->out2 = f.end;
    a.end->out1 = a.start;
    a.end->out2 = f.end;
    return f;
}

/* regex := alt ; alt := cat ('|' cat)* ; cat := rep+ ; rep := atom '*'? */
static char *re_pos;

static struct nfa_frag re_alt(void);

static struct nfa_frag re_atom(void)
{
    struct nfa_frag f;

    if (*re_pos == '(') {
        re_pos++;
        f = re_alt();
        if (*re_pos == ')')
            re_pos++;
        return f;
    }
    f = frag_literal(*re_pos);
    re_pos++;
    return f;
}

static struct nfa_frag re_rep(void)
{
    struct nfa_frag f;

    f = re_atom();
    while (*re_pos == '*') {
        re_pos++;
        f = frag_star(f);
    }
    return f;
}

static int re_at_atom(void)
{
    return *re_pos != '\0' && *re_pos != '|' && *re_pos != ')';
}

static struct nfa_frag re_cat(void)
{
    struct nfa_frag f;

    f = re_rep();
    while (re_at_atom())
        f = frag_concat(f, re_rep());
    return f;
}

static struct nfa_frag re_alt(void)
{
    struct nfa_frag f;

    f = re_cat();
    while (*re_pos == '|') {
        re_pos++;
        f = frag_alt(f, re_cat());
    }
    return f;
}

static struct nfa_frag compile_regex(char *pattern, struct rule *r)
{
    struct nfa_frag f;

    re_pos = pattern;
    f = re_alt();
    f.end->accept_rule = r;
    return f;
}

/* Subset construction: DFA states are bit-sets over NFA ids. */

struct subset {
    unsigned long bits[(MAXNFA + 63) / 64];
    struct state *dfa;
    struct subset *next;
};

static struct subset *subsets;

static int bit_test(unsigned long *bits, int i)
{
    return (bits[i / 64] >> (i % 64)) & 1;
}

static void bit_set(unsigned long *bits, int i)
{
    bits[i / 64] |= 1UL << (i % 64);
}

static void closure(unsigned long *bits)
{
    int changed;
    int i;

    changed = 1;
    while (changed) {
        changed = 0;
        for (i = 0; i < n_nfa && i < MAXNFA; i++) {
            struct nfa_state *s;
            if (!bit_test(bits, i))
                continue;
            s = nfa_states[i];
            if (s->on_char != EPSILON)
                continue;
            if (s->out1 != 0 && !bit_test(bits, s->out1->id)) {
                bit_set(bits, s->out1->id);
                changed = 1;
            }
            if (s->out2 != 0 && !bit_test(bits, s->out2->id)) {
                bit_set(bits, s->out2->id);
                changed = 1;
            }
        }
    }
}

static struct subset *find_subset(unsigned long *bits)
{
    struct subset *ss;
    int i;
    int same;

    for (ss = subsets; ss != 0; ss = ss->next) {
        same = 1;
        for (i = 0; i < (MAXNFA + 63) / 64; i++) {
            if (ss->bits[i] != bits[i])
                same = 0;
        }
        if (same)
            return ss;
    }
    return 0;
}

static struct subset *intern_subset(unsigned long *bits)
{
    struct subset *ss;
    int i;

    ss = find_subset(bits);
    if (ss != 0)
        return ss;
    ss = (struct subset *)arena_alloc(sizeof(struct subset));
    if (ss == 0)
        return 0;
    for (i = 0; i < (MAXNFA + 63) / 64; i++)
        ss->bits[i] = bits[i];
    ss->dfa = new_state();
    for (i = 0; i < n_nfa && i < MAXNFA; i++) {
        if (bit_test(ss->bits, i) && nfa_states[i]->accept_rule != 0) {
            ss->dfa->accepting = 1;
            ss->dfa->rule = nfa_states[i]->accept_rule;
        }
    }
    ss->next = subsets;
    subsets = ss;
    return ss;
}

static struct state *determinize(struct nfa_frag nfa)
{
    unsigned long start_bits[(MAXNFA + 63) / 64];
    struct subset *work;
    struct subset *ss;
    int i;
    int c;

    for (i = 0; i < (MAXNFA + 63) / 64; i++)
        start_bits[i] = 0;
    bit_set(start_bits, nfa.start->id);
    closure(start_bits);
    work = intern_subset(start_bits);
    if (work == 0)
        return 0;

    /* Fixpoint over interned subsets (list only grows at the front, so
     * iterate until no new subsets appear). */
    for (;;) {
        int added;
        added = 0;
        for (ss = subsets; ss != 0; ss = ss->next) {
            for (c = 'a'; c <= 'z'; c++) {
                unsigned long next_bits[(MAXNFA + 63) / 64];
                int any;
                struct subset *target;
                any = 0;
                for (i = 0; i < (MAXNFA + 63) / 64; i++)
                    next_bits[i] = 0;
                for (i = 0; i < n_nfa && i < MAXNFA; i++) {
                    struct nfa_state *s;
                    if (!bit_test(ss->bits, i))
                        continue;
                    s = nfa_states[i];
                    if (s->on_char == c && s->out1 != 0) {
                        bit_set(next_bits, s->out1->id);
                        any = 1;
                    }
                }
                if (!any)
                    continue;
                closure(next_bits);
                if (find_subset(next_bits) == 0)
                    added = 1;
                target = intern_subset(next_bits);
                if (target != 0 && step(ss->dfa, c) == 0)
                    add_transition(ss->dfa, c, target->dfa);
            }
        }
        if (!added)
            break;
    }
    return work->dfa;
}

int main(void)
{
    struct state *start;
    struct state *re_start;
    struct rule *r_if;
    struct rule *r_int;
    struct rule *r_for;
    struct rule *r_re;
    struct rule *hit;
    struct nfa_frag nfa;

    start = new_state();
    r_if = new_rule("if", 1);
    r_int = new_rule("int", 2);
    r_for = new_rule("for", 3);
    build_keyword(start, "if", r_if);
    build_keyword(start, "int", r_int);
    build_keyword(start, "for", r_for);

    dump_dfa();
    hit = scan(start, "int");
    if (hit != 0)
        printf("matched rule %d (%s)\n", hit->id, hit->pattern);
    hit = scan(start, "iffy");
    if (hit != 0)
        printf("longest match rule %d (%s)\n", hit->id, hit->pattern);

    /* Regex path: (a|b)*abb via Thompson NFA + subset construction. */
    r_re = new_rule("(a|b)*abb", 4);
    nfa = compile_regex(r_re->pattern, r_re);
    re_start = determinize(nfa);
    if (re_start != 0) {
        hit = scan(re_start, "ababb");
        printf("regex %s on 'ababb': %s\n", r_re->pattern,
               hit != 0 ? "accept" : "reject");
        hit = scan(re_start, "abab");
        printf("regex %s on 'abab': %s\n", r_re->pattern,
               hit != 0 ? "accept" : "reject");
    }
    printf("%d nfa states, %d dfa states, arena used %d of %d\n",
           n_nfa, nstates, pool.used, ARENA_SIZE);
    return 0;
}
