/* compress - LZW compression over a byte buffer.
 *
 * Stand-in for the SPEC "compress" benchmark: a code table indexed by
 * (prefix, char) hashing, array-based chaining, and bit packing.  All
 * structure use is at declared types.
 */

#define TABLE_BITS 13
#define TABLE_SIZE 8192
#define FIRST_CODE 257
#define CLEAR_CODE 256
#define MAXBYTES 4096

struct entry {
    int prefix;
    int suffix;
    int code;
    int in_use;
};

struct codec {
    struct entry table[TABLE_SIZE];
    int next_code;
    int bits_per_code;
    long packed_bits;
};

static struct codec enc;
static unsigned char input[MAXBYTES];
static int input_len;
static int output_codes[MAXBYTES];
static int output_len;

static unsigned int hash_pair(int prefix, int suffix)
{
    unsigned int h;

    h = (unsigned int)(prefix * 31 + suffix * 7 + 3);
    return h % TABLE_SIZE;
}

static struct entry *probe(struct codec *c, int prefix, int suffix)
{
    unsigned int h;
    struct entry *e;
    int tries;

    h = hash_pair(prefix, suffix);
    tries = 0;
    for (;;) {
        e = &c->table[h];
        if (!e->in_use)
            return e;
        if (e->prefix == prefix && e->suffix == suffix)
            return e;
        h = (h + 1) % TABLE_SIZE;
        tries++;
        if (tries >= TABLE_SIZE)
            return 0;
    }
}

static void reset_codec(struct codec *c)
{
    int i;

    for (i = 0; i < TABLE_SIZE; i++)
        c->table[i].in_use = 0;
    c->next_code = FIRST_CODE;
    c->bits_per_code = 9;
    c->packed_bits = 0;
}

static void emit_code(struct codec *c, int code)
{
    output_codes[output_len] = code;
    output_len++;
    c->packed_bits += c->bits_per_code;
    if (c->next_code >> c->bits_per_code)
        c->bits_per_code++;
}

static void compress_buffer(struct codec *c)
{
    int prefix;
    int i;
    struct entry *e;

    if (input_len == 0)
        return;
    prefix = input[0];
    for (i = 1; i < input_len; i++) {
        int ch;
        ch = input[i];
        e = probe(c, prefix, ch);
        if (e != 0 && e->in_use) {
            prefix = e->code;
            continue;
        }
        emit_code(c, prefix);
        if (e != 0 && c->next_code < TABLE_SIZE + FIRST_CODE) {
            e->prefix = prefix;
            e->suffix = ch;
            e->code = c->next_code;
            e->in_use = 1;
            c->next_code++;
        } else {
            emit_code(c, CLEAR_CODE);
            reset_codec(c);
        }
        prefix = ch;
    }
    emit_code(c, prefix);
}

static void fill_input(void)
{
    int i;

    input_len = MAXBYTES;
    for (i = 0; i < input_len; i++)
        input[i] = (unsigned char)((i * i + i / 7) % 61);
}

/* ------------------------------------------------------------------ */
/* Decompressor: rebuild the byte stream from the emitted codes and    */
/* verify the round trip, as the SPEC harness does.                    */
/* ------------------------------------------------------------------ */

struct dict_entry {
    int prefix;             /* previous code, or -1 for roots */
    unsigned char suffix;
};

struct decoder {
    struct dict_entry dict[TABLE_SIZE + FIRST_CODE];
    int next_code;
};

static struct decoder dec;
static unsigned char rebuilt[MAXBYTES * 2];
static int rebuilt_len;

static void decoder_reset(struct decoder *d)
{
    int i;

    for (i = 0; i < 256; i++) {
        d->dict[i].prefix = -1;
        d->dict[i].suffix = (unsigned char)i;
    }
    d->next_code = FIRST_CODE;
}

static int expand_code(struct decoder *d, int code, unsigned char *out,
                       int max)
{
    unsigned char stack[TABLE_SIZE];
    int depth;
    int n;

    depth = 0;
    while (code >= 0 && depth < TABLE_SIZE) {
        if (code >= d->next_code && code >= 256)
            return -1;  /* corrupt stream */
        stack[depth++] = d->dict[code].suffix;
        code = d->dict[code].prefix;
    }
    n = 0;
    while (depth > 0 && n < max) {
        out[n++] = stack[--depth];
        (void)stack;
    }
    return n;
}

static unsigned char first_byte_of(struct decoder *d, int code)
{
    while (d->dict[code].prefix >= 0)
        code = d->dict[code].prefix;
    return d->dict[code].suffix;
}

static int decompress(struct decoder *d)
{
    int i;
    int prev;
    int code;
    int n;

    decoder_reset(d);
    rebuilt_len = 0;
    prev = -1;
    for (i = 0; i < output_len; i++) {
        code = output_codes[i];
        if (code == CLEAR_CODE) {
            decoder_reset(d);
            prev = -1;
            continue;
        }
        if (prev >= 0 && d->next_code < TABLE_SIZE + FIRST_CODE) {
            d->dict[d->next_code].prefix = prev;
            if (code < d->next_code)
                d->dict[d->next_code].suffix = first_byte_of(d, code);
            else
                d->dict[d->next_code].suffix = first_byte_of(d, prev);
            d->next_code++;
        }
        n = expand_code(d, code, &rebuilt[rebuilt_len],
                        (int)sizeof(rebuilt) - rebuilt_len);
        if (n < 0)
            return 0;
        rebuilt_len += n;
        prev = code;
    }
    return 1;
}

static int verify_roundtrip(void)
{
    int i;

    if (rebuilt_len != input_len)
        return 0;
    for (i = 0; i < input_len; i++) {
        if (rebuilt[i] != input[i])
            return 0;
    }
    return 1;
}

static double ratio(struct codec *c)
{
    double in_bits;

    in_bits = (double)input_len * 8.0;
    if (c->packed_bits == 0)
        return 0.0;
    return in_bits / (double)c->packed_bits;
}

int main(void)
{
    int ok;

    fill_input();
    reset_codec(&enc);
    compress_buffer(&enc);
    printf("%d bytes -> %d codes (%ld bits), ratio %f\n",
           input_len, output_len, enc.packed_bits, ratio(&enc));
    ok = decompress(&dec);
    printf("decompress: %s, %d bytes, roundtrip %s\n",
           ok ? "ok" : "corrupt", rebuilt_len,
           verify_roundtrip() ? "verified" : "FAILED");
    return verify_roundtrip() ? 0 : 1;
}
