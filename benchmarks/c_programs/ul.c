/* ul - do-underlining filter.
 *
 * Stand-in for the Landi benchmark "ul": translates backspace-overstrike
 * sequences into terminal underline escapes.  Mode tables, line buffers,
 * and function-pointer dispatch per terminal type; no structure casting.
 */

#define OBUFSIZ 1024

#define MODE_PLAIN 0
#define MODE_UNDER 1
#define MODE_BOLD 2

struct cap {
    char *enter_under;
    char *exit_under;
    char *enter_bold;
    char *exit_bold;
};

struct outstate {
    int mode;
    int col;
    char buf[OBUFSIZ];
    int len;
    struct cap *caps;
};

static struct cap vt100 = { "\033[4m", "\033[24m", "\033[1m", "\033[22m" };
static struct cap dumb = { "_", "", "*", "" };

static struct outstate out;

/* Mode statistics: how long each rendering mode was active. */

struct mode_stats {
    long chars_in_mode[3];
    int transitions;
};

static struct mode_stats mode_stats;

static void account_mode(int mode, int nchars)
{
    if (mode >= 0 && mode < 3)
        mode_stats.chars_in_mode[mode] += nchars;
}

static void report_modes(void)
{
    printf("plain %ld, underline %ld, bold %ld (transitions %d)\n",
           mode_stats.chars_in_mode[MODE_PLAIN],
           mode_stats.chars_in_mode[MODE_UNDER],
           mode_stats.chars_in_mode[MODE_BOLD],
           mode_stats.transitions);
}


static void put_str(struct outstate *o, char *s)
{
    while (*s != '\0' && o->len < OBUFSIZ - 1) {
        o->buf[o->len] = *s;
        o->len++;
        s++;
    }
}

static void put_ch(struct outstate *o, int c)
{
    if (o->len < OBUFSIZ - 1) {
        o->buf[o->len] = (char)c;
        o->len++;
        o->col++;
        account_mode(o->mode, 1);
    }
}

static void set_mode(struct outstate *o, int mode)
{
    struct cap *t;

    t = o->caps;
    if (o->mode == mode)
        return;
    mode_stats.transitions++;
    if (o->mode == MODE_UNDER)
        put_str(o, t->exit_under);
    if (o->mode == MODE_BOLD)
        put_str(o, t->exit_bold);
    if (mode == MODE_UNDER)
        put_str(o, t->enter_under);
    if (mode == MODE_BOLD)
        put_str(o, t->enter_bold);
    o->mode = mode;
}

static void flush_line(struct outstate *o)
{
    set_mode(o, MODE_PLAIN);
    o->buf[o->len] = '\0';
    puts(o->buf);
    o->len = 0;
    o->col = 0;
}

static void process_line(struct outstate *o, char *line)
{
    char *p;

    p = line;
    while (*p != '\0' && *p != '\n') {
        if (p[0] == '_' && p[1] == '\b') {
            set_mode(o, MODE_UNDER);
            put_ch(o, p[2]);
            p += 3;
        } else if (p[1] == '\b' && p[0] == p[2]) {
            set_mode(o, MODE_BOLD);
            put_ch(o, p[0]);
            p += 3;
        } else {
            set_mode(o, MODE_PLAIN);
            put_ch(o, *p);
            p++;
        }
    }
    flush_line(o);
}

/* Terminal database: name -> capabilities, searched linearly like a
 * miniature termcap. */

struct term_entry {
    char *name;
    char *aliases;
    struct cap *caps;
    int uses;
};

static struct cap xterm_caps = { "\033[4m", "\033[24m", "\033[1m", "\033[22m" };
static struct cap wyse_caps = { "\033G4", "\033G0", "\033G8", "\033G0" };

static struct term_entry term_db[] = {
    { "vt100", "vt100|vt102|dec", 0, 0 },
    { "xterm", "xterm|xterm-256color|rxvt", 0, 0 },
    { "wyse",  "wyse50|wyse60", 0, 0 },
    { "dumb",  "dumb|unknown", 0, 0 },
    { 0, 0, 0, 0 },
};

static void init_term_db(void)
{
    term_db[0].caps = &vt100;
    term_db[1].caps = &xterm_caps;
    term_db[2].caps = &wyse_caps;
    term_db[3].caps = &dumb;
}

static int alias_matches(char *aliases, char *name)
{
    char *p;
    char *start;
    int len;

    len = (int)strlen(name);
    p = aliases;
    start = p;
    for (;;) {
        if (*p == '|' || *p == '\0') {
            if (p - start == len && strncmp(start, name, (size_t)len) == 0)
                return 1;
            if (*p == '\0')
                return 0;
            start = p + 1;
        }
        p++;
    }
}

static struct cap *pick_terminal(char *name)
{
    struct term_entry *e;
    int i;

    if (name == 0)
        return &dumb;
    for (i = 0; term_db[i].name != 0; i++) {
        e = &term_db[i];
        if (alias_matches(e->aliases, name)) {
            e->uses++;
            return e->caps;
        }
    }
    return &dumb;
}


int main(void)
{
    char line[OBUFSIZ];
    FILE *in;
    char *term;

    init_term_db();
    term = getenv("TERM");
    out.caps = pick_terminal(term);
    out.mode = MODE_PLAIN;
    out.len = 0;
    out.col = 0;

    in = fopen("input.txt", "r");
    if (in == 0)
        return 1;
    while (fgets(line, OBUFSIZ, in) != 0)
        process_line(&out, line);
    fclose(in);
    report_modes();
    return 0;
}
