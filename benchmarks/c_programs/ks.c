/* ks - Kernighan-Lin/Schweikert graph partitioning.
 *
 * Stand-in for the Austin benchmark "ks": modules connected by nets,
 * iteratively swapped between two partitions to reduce cut cost.
 * Linked structures everywhere, used only at declared types.
 */

#define MAXMODULES 64
#define MAXNETS 128

struct netlink {
    struct netlink *next;
    struct net *net;
};

struct modlink {
    struct modlink *next;
    struct module *module;
};

struct module {
    int id;
    int partition;
    int locked;
    int gain;
    struct netlink *nets;
};

struct net {
    int id;
    struct modlink *modules;
    int count_a;
    int count_b;
};

static struct module modules[MAXMODULES];
static struct net nets[MAXNETS];
static int nmodules;
static int nnets;

static void connect(struct module *m, struct net *n)
{
    struct netlink *nl;
    struct modlink *ml;

    nl = (struct netlink *)malloc(sizeof(struct netlink));
    nl->net = n;
    nl->next = m->nets;
    m->nets = nl;

    ml = (struct modlink *)malloc(sizeof(struct modlink));
    ml->module = m;
    ml->next = n->modules;
    n->modules = ml;
}

static void recount_net(struct net *n)
{
    struct modlink *ml;

    n->count_a = 0;
    n->count_b = 0;
    for (ml = n->modules; ml != 0; ml = ml->next) {
        if (ml->module->partition == 0)
            n->count_a++;
        else
            n->count_b++;
    }
}

static int cut_cost(void)
{
    int i;
    int cost;

    cost = 0;
    for (i = 0; i < nnets; i++) {
        recount_net(&nets[i]);
        if (nets[i].count_a > 0 && nets[i].count_b > 0)
            cost++;
    }
    return cost;
}

static void compute_gain(struct module *m)
{
    struct netlink *nl;
    struct net *n;
    int mine;
    int theirs;

    m->gain = 0;
    for (nl = m->nets; nl != 0; nl = nl->next) {
        n = nl->net;
        recount_net(n);
        if (m->partition == 0) {
            mine = n->count_a;
            theirs = n->count_b;
        } else {
            mine = n->count_b;
            theirs = n->count_a;
        }
        if (mine == 1)
            m->gain++;
        if (theirs == 0)
            m->gain--;
    }
}

static struct module *best_unlocked(void)
{
    int i;
    struct module *best;

    best = 0;
    for (i = 0; i < nmodules; i++) {
        struct module *m;
        m = &modules[i];
        if (m->locked)
            continue;
        compute_gain(m);
        if (best == 0 || m->gain > best->gain)
            best = m;
    }
    return best;
}

static int one_pass(void)
{
    int moved;
    struct module *m;
    int before;
    int after;

    moved = 0;
    before = cut_cost();
    for (;;) {
        m = best_unlocked();
        if (m == 0 || m->gain <= 0)
            break;
        m->partition = 1 - m->partition;
        m->locked = 1;
        moved++;
    }
    after = cut_cost();
    return before - after;
}

static void unlock_all(void)
{
    int i;

    for (i = 0; i < nmodules; i++)
        modules[i].locked = 0;
}

static void build_example(void)
{
    int i;

    nmodules = 16;
    nnets = 20;
    for (i = 0; i < nmodules; i++) {
        modules[i].id = i;
        modules[i].partition = i % 2;
        modules[i].locked = 0;
        modules[i].nets = 0;
    }
    for (i = 0; i < nnets; i++) {
        nets[i].id = i;
        nets[i].modules = 0;
        connect(&modules[i % nmodules], &nets[i]);
        connect(&modules[(i * 3 + 1) % nmodules], &nets[i]);
        connect(&modules[(i * 7 + 2) % nmodules], &nets[i]);
    }
}

int main(void)
{
    int round;
    int improved;

    build_example();
    for (round = 0; round < 10; round++) {
        unlock_all();
        improved = one_pass();
        printf("round %d improved by %d, cost now %d\n",
               round, improved, cut_cost());
        if (improved <= 0)
            break;
    }
    return 0;
}
