/* li - miniature lisp interpreter core.
 *
 * Stand-in for SPEC "130.li" (xlisp): every lisp value is a node with a
 * type tag; cons cells, symbols, numbers and strings are all carved from
 * the same node pool and downcast per tag.  The paper's Figure 6 notes
 * that for 130.li the portable algorithms generate *fewer* edges than
 * Offsets (Offsets materializes non-field offsets); this program keeps
 * that flavor with mixed-size variants in one pool.
 */

#define T_CONS 1
#define T_SYM 2
#define T_NUM 3
#define T_STR 4
#define POOLSIZE 256

struct node {
    int type;
    int gcmark;
};

struct cons_cell {
    int type;
    int gcmark;
    struct node *car;
    struct node *cdr;
};

struct symbol {
    int type;
    int gcmark;
    char *name;
    struct node *value;
    struct symbol *next_sym;
};

struct number {
    int type;
    int gcmark;
    long value;
};

struct string_obj {
    int type;
    int gcmark;
    char *chars;
    int length;
};

union any_node {
    struct cons_cell cons;
    struct symbol sym;
    struct number num;
    struct string_obj str;
};

static union any_node pool[POOLSIZE];
static int pool_used;
static struct symbol *symbols;
static struct node *nil_node;
static long eval_count;

static struct node *alloc_node(int type)
{
    struct node *n;

    if (pool_used >= POOLSIZE)
        return 0;
    n = (struct node *)&pool[pool_used];
    pool_used++;
    n->type = type;
    n->gcmark = 0;
    return n;
}

static struct node *cons(struct node *car, struct node *cdr)
{
    struct cons_cell *c;

    c = (struct cons_cell *)alloc_node(T_CONS);
    if (c == 0)
        return 0;
    c->car = car;
    c->cdr = cdr;
    return (struct node *)c;
}

static struct node *car(struct node *n)
{
    if (n == 0 || n->type != T_CONS)
        return nil_node;
    return ((struct cons_cell *)n)->car;
}

static struct node *cdr(struct node *n)
{
    if (n == 0 || n->type != T_CONS)
        return nil_node;
    return ((struct cons_cell *)n)->cdr;
}

static struct node *mk_number(long v)
{
    struct number *n;

    n = (struct number *)alloc_node(T_NUM);
    if (n == 0)
        return 0;
    n->value = v;
    return (struct node *)n;
}

static struct symbol *intern(char *name)
{
    struct symbol *s;

    for (s = symbols; s != 0; s = s->next_sym) {
        if (strcmp(s->name, name) == 0)
            return s;
    }
    s = (struct symbol *)alloc_node(T_SYM);
    if (s == 0)
        return 0;
    s->name = strdup(name);
    s->value = nil_node;
    s->next_sym = symbols;
    symbols = s;
    return s;
}

static long num_value(struct node *n)
{
    if (n != 0 && n->type == T_NUM)
        return ((struct number *)n)->value;
    return 0;
}

static struct node *eval(struct node *form);

static struct node *eval_args_sum(struct node *args)
{
    long acc;
    struct node *p;

    acc = 0;
    for (p = args; p != 0 && p->type == T_CONS; p = cdr(p))
        acc += num_value(eval(car(p)));
    return mk_number(acc);
}

static struct node *eval_args_mul(struct node *args)
{
    long acc;
    struct node *p;

    acc = 1;
    for (p = args; p != 0 && p->type == T_CONS; p = cdr(p))
        acc *= num_value(eval(car(p)));
    return mk_number(acc);
}

static struct node *eval_setq(struct node *args)
{
    struct symbol *s;
    struct node *v;

    if (car(args) == 0 || car(args)->type != T_SYM)
        return nil_node;
    s = (struct symbol *)car(args);
    v = eval(car(cdr(args)));
    s->value = v;
    return v;
}

static struct node *eval(struct node *form)
{
    eval_count++;
    if (form == 0)
        return nil_node;
    switch (form->type) {
    case T_NUM:
    case T_STR:
        return form;
    case T_SYM:
        return ((struct symbol *)form)->value;
    case T_CONS: {
        struct node *head;
        head = car(form);
        if (head != 0 && head->type == T_SYM) {
            struct symbol *op;
            op = (struct symbol *)head;
            if (strcmp(op->name, "+") == 0)
                return eval_args_sum(cdr(form));
            if (strcmp(op->name, "*") == 0)
                return eval_args_mul(cdr(form));
            if (strcmp(op->name, "setq") == 0)
                return eval_setq(cdr(form));
            if (strcmp(op->name, "quote") == 0)
                return car(cdr(form));
            if (strcmp(op->name, "if") == 0)
                return eval_if(cdr(form));
            if (strcmp(op->name, "list") == 0)
                return eval_list_fn(cdr(form));
            if (strcmp(op->name, "length") == 0)
                return mk_number(list_length(eval(car(cdr(form)))));
            if (strcmp(op->name, "car") == 0)
                return car(eval(car(cdr(form))));
            if (strcmp(op->name, "cdr") == 0)
                return cdr(eval(car(cdr(form))));
            if (strcmp(op->name, "cons") == 0)
                return cons(eval(car(cdr(form))),
                            eval(car(cdr(cdr(form)))));
        }
        return nil_node;
    }
    }
    return nil_node;
}

static struct node *mk_string(char *chars)
{
    struct string_obj *s;

    s = (struct string_obj *)alloc_node(T_STR);
    if (s == 0)
        return 0;
    s->chars = strdup(chars);
    s->length = (int)strlen(chars);
    return (struct node *)s;
}

/* ------------------------------------------------------------------ */
/* Reader: parse s-expressions from text, like xlisp's READ.           */
/* ------------------------------------------------------------------ */

struct reader {
    char *pos;
    int depth;
    int errors;
};

static void skip_ws(struct reader *r)
{
    while (*r->pos == ' ' || *r->pos == '\n' || *r->pos == '\t')
        r->pos++;
}

static struct node *read_form(struct reader *r);

static struct node *read_list(struct reader *r)
{
    struct node *head;
    struct node *tail;
    struct node *item;
    struct cons_cell *cell;

    head = 0;
    tail = 0;
    r->depth++;
    for (;;) {
        skip_ws(r);
        if (*r->pos == '\0') {
            r->errors++;
            break;
        }
        if (*r->pos == ')') {
            r->pos++;
            break;
        }
        item = read_form(r);
        if (item == 0)
            break;
        cell = (struct cons_cell *)cons(item, 0);
        if (cell == 0)
            break;
        if (tail == 0) {
            head = (struct node *)cell;
        } else {
            ((struct cons_cell *)tail)->cdr = (struct node *)cell;
        }
        tail = (struct node *)cell;
    }
    r->depth--;
    return head;
}

static struct node *read_atom(struct reader *r)
{
    char buf[64];
    int i;

    if (*r->pos == '"') {
        r->pos++;
        i = 0;
        while (*r->pos != '"' && *r->pos != '\0' && i < 63)
            buf[i++] = *r->pos++;
        buf[i] = '\0';
        if (*r->pos == '"')
            r->pos++;
        return mk_string(buf);
    }
    if (isdigit(*r->pos)
        || (*r->pos == '-' && isdigit(r->pos[1]))) {
        long v;
        int neg;
        neg = *r->pos == '-';
        if (neg)
            r->pos++;
        v = 0;
        while (isdigit(*r->pos))
            v = v * 10 + (*r->pos++ - '0');
        return mk_number(neg ? -v : v);
    }
    i = 0;
    while (*r->pos != '\0' && *r->pos != ' ' && *r->pos != '\n'
           && *r->pos != '\t' && *r->pos != '(' && *r->pos != ')'
           && i < 63)
        buf[i++] = *r->pos++;
    buf[i] = '\0';
    return (struct node *)intern(buf);
}

static struct node *read_form(struct reader *r)
{
    skip_ws(r);
    if (*r->pos == '\0')
        return 0;
    if (*r->pos == '(') {
        r->pos++;
        return read_list(r);
    }
    if (*r->pos == '\'') {
        struct node *quoted;
        r->pos++;
        quoted = read_form(r);
        return cons((struct node *)intern("quote"), cons(quoted, 0));
    }
    return read_atom(r);
}

static struct node *read_string(char *text, struct reader *r)
{
    r->pos = text;
    r->depth = 0;
    r->errors = 0;
    return read_form(r);
}

/* ------------------------------------------------------------------ */
/* Printer: the other half of the REPL.                                */
/* ------------------------------------------------------------------ */

static void print_form(struct node *n)
{
    if (n == 0 || n == nil_node) {
        printf("nil");
        return;
    }
    switch (n->type) {
    case T_NUM:
        printf("%ld", ((struct number *)n)->value);
        break;
    case T_STR:
        printf("\"%s\"", ((struct string_obj *)n)->chars);
        break;
    case T_SYM:
        printf("%s", ((struct symbol *)n)->name != 0
               ? ((struct symbol *)n)->name : "nil");
        break;
    case T_CONS: {
        struct node *p;
        printf("(");
        for (p = n; p != 0 && p->type == T_CONS; p = cdr(p)) {
            print_form(car(p));
            if (cdr(p) != 0 && cdr(p) != nil_node)
                printf(" ");
        }
        printf(")");
        break;
    }
    }
}

static struct node *eval_if(struct node *args)
{
    struct node *test;

    test = eval(car(args));
    if (test != nil_node && test != 0
        && !(test->type == T_NUM && ((struct number *)test)->value == 0))
        return eval(car(cdr(args)));
    return eval(car(cdr(cdr(args))));
}

static struct node *eval_list_fn(struct node *args)
{
    struct node *head;
    struct node *tail;
    struct node *p;
    struct node *cell;

    head = 0;
    tail = 0;
    for (p = args; p != 0 && p->type == T_CONS; p = cdr(p)) {
        cell = cons(eval(car(p)), 0);
        if (cell == 0)
            break;
        if (tail == 0)
            head = cell;
        else
            ((struct cons_cell *)tail)->cdr = cell;
        tail = cell;
    }
    return head != 0 ? head : nil_node;
}

static long list_length(struct node *n)
{
    long len;

    len = 0;
    while (n != 0 && n->type == T_CONS) {
        len++;
        n = cdr(n);
    }
    return len;
}

static void mark(struct node *n)
{
    if (n == 0 || n->gcmark)
        return;
    n->gcmark = 1;
    if (n->type == T_CONS) {
        mark(((struct cons_cell *)n)->car);
        mark(((struct cons_cell *)n)->cdr);
    } else if (n->type == T_SYM) {
        mark(((struct symbol *)n)->value);
    }
}

static int sweep_count(void)
{
    int i;
    int live;
    struct node *n;

    live = 0;
    for (i = 0; i < pool_used; i++) {
        n = (struct node *)&pool[i];
        if (n->gcmark) {
            live++;
            n->gcmark = 0;
        }
    }
    return live;
}

static char *REPL_INPUTS[] = {
    "(setq x (+ 1 2 (* 3 4)))",
    "(setq lst (list 1 2 3 x))",
    "(length lst)",
    "(car (cdr lst))",
    "(if (+ 0 0) \"yes\" \"no\")",
    "(setq lst (cons 99 lst))",
    "(length lst)",
    "'(a b c)",
    0,
};

int main(void)
{
    struct reader r;
    struct node *form;
    struct node *result;
    int i;

    nil_node = alloc_node(T_SYM);
    ((struct symbol *)nil_node)->name = "nil";
    ((struct symbol *)nil_node)->value = nil_node;

    for (i = 0; REPL_INPUTS[i] != 0; i++) {
        form = read_string(REPL_INPUTS[i], &r);
        if (r.errors != 0) {
            printf("read error in %s\n", REPL_INPUTS[i]);
            continue;
        }
        result = eval(form);
        printf("> %s\n", REPL_INPUTS[i]);
        print_form(result);
        printf("\n");
        mark(form);
        mark(result);
    }
    mark((struct node *)symbols);
    printf("%d nodes live of %d used (evals=%ld)\n",
           sweep_count(), pool_used, eval_count);
    return 0;
}
