/* ft - minimum spanning tree via Prim's algorithm.
 *
 * Stand-in for the Austin benchmark "ft": heap-allocated vertices and
 * adjacency lists, a hand-rolled priority list, all structures used at
 * declared types only.
 */

#define INFINITY 1000000000

struct edge {
    struct edge *next;
    struct vertex *to;
    int weight;
};

struct vertex {
    struct vertex *next;
    struct edge *edges;
    struct vertex *parent;
    int key;
    int in_tree;
    int id;
};

static struct vertex *graph;
static int nvertices;
static int tree_cost;

static struct vertex *new_vertex(int id)
{
    struct vertex *v;

    v = (struct vertex *)malloc(sizeof(struct vertex));
    v->edges = 0;
    v->parent = 0;
    v->key = INFINITY;
    v->in_tree = 0;
    v->id = id;
    v->next = graph;
    graph = v;
    nvertices++;
    return v;
}

static void add_edge(struct vertex *a, struct vertex *b, int w)
{
    struct edge *e;

    e = (struct edge *)malloc(sizeof(struct edge));
    e->to = b;
    e->weight = w;
    e->next = a->edges;
    a->edges = e;

    e = (struct edge *)malloc(sizeof(struct edge));
    e->to = a;
    e->weight = w;
    e->next = b->edges;
    b->edges = e;
}

static struct vertex *extract_min(void)
{
    struct vertex *v;
    struct vertex *best;

    best = 0;
    for (v = graph; v != 0; v = v->next) {
        if (v->in_tree)
            continue;
        if (best == 0 || v->key < best->key)
            best = v;
    }
    return best;
}

static void relax_neighbors(struct vertex *u)
{
    struct edge *e;
    struct vertex *w;

    for (e = u->edges; e != 0; e = e->next) {
        w = e->to;
        if (!w->in_tree && e->weight < w->key) {
            w->key = e->weight;
            w->parent = u;
        }
    }
}

static void prim(struct vertex *root)
{
    struct vertex *u;

    root->key = 0;
    for (;;) {
        u = extract_min();
        if (u == 0 || u->key == INFINITY)
            break;
        u->in_tree = 1;
        if (u->parent != 0)
            tree_cost += u->key;
        relax_neighbors(u);
    }
}

static struct vertex *find_vertex(int id)
{
    struct vertex *v;

    for (v = graph; v != 0; v = v->next) {
        if (v->id == id)
            return v;
    }
    return new_vertex(id);
}

static void build_example(void)
{
    int i;
    struct vertex *a;
    struct vertex *b;

    for (i = 0; i < 12; i++) {
        a = find_vertex(i);
        b = find_vertex((i + 1) % 12);
        add_edge(a, b, (i * 7) % 13 + 1);
    }
    for (i = 0; i < 12; i += 3) {
        a = find_vertex(i);
        b = find_vertex((i + 5) % 12);
        add_edge(a, b, (i * 11) % 17 + 1);
    }
}

static void print_tree(void)
{
    struct vertex *v;

    for (v = graph; v != 0; v = v->next) {
        if (v->parent != 0)
            printf("%d - %d (w=%d)\n", v->parent->id, v->id, v->key);
    }
    printf("total cost: %d\n", tree_cost);
}

/* ------------------------------------------------------------------ */
/* Kruskal's algorithm as a cross-check: collect edges, sort them, and */
/* grow a forest with union-find.  Same graph, same cost expected.     */
/* ------------------------------------------------------------------ */

struct edge_rec {
    struct vertex *a;
    struct vertex *b;
    int weight;
};

struct dsu_node {
    struct vertex *vertex;
    struct dsu_node *parent;
    int rank;
    struct dsu_node *next;
};

static struct edge_rec edge_pool[256];
static int n_edge_recs;
static struct dsu_node *dsu_nodes;

static void collect_edges(void)
{
    struct vertex *v;
    struct edge *e;

    n_edge_recs = 0;
    for (v = graph; v != 0; v = v->next) {
        for (e = v->edges; e != 0; e = e->next) {
            /* Each undirected edge appears twice; keep one direction. */
            if (v->id < e->to->id && n_edge_recs < 256) {
                edge_pool[n_edge_recs].a = v;
                edge_pool[n_edge_recs].b = e->to;
                edge_pool[n_edge_recs].weight = e->weight;
                n_edge_recs++;
            }
        }
    }
}

static void sort_edges(void)
{
    int i;
    int j;
    struct edge_rec tmp;

    for (i = 1; i < n_edge_recs; i++) {
        tmp = edge_pool[i];
        j = i - 1;
        while (j >= 0 && edge_pool[j].weight > tmp.weight) {
            edge_pool[j + 1] = edge_pool[j];
            j--;
        }
        edge_pool[j + 1] = tmp;
    }
}

static struct dsu_node *dsu_for(struct vertex *v)
{
    struct dsu_node *d;

    for (d = dsu_nodes; d != 0; d = d->next) {
        if (d->vertex == v)
            return d;
    }
    d = (struct dsu_node *)malloc(sizeof(struct dsu_node));
    d->vertex = v;
    d->parent = d;
    d->rank = 0;
    d->next = dsu_nodes;
    dsu_nodes = d;
    return d;
}

static struct dsu_node *dsu_find(struct dsu_node *d)
{
    while (d->parent != d) {
        d->parent = d->parent->parent;
        d = d->parent;
    }
    return d;
}

static int dsu_union(struct dsu_node *a, struct dsu_node *b)
{
    a = dsu_find(a);
    b = dsu_find(b);
    if (a == b)
        return 0;
    if (a->rank < b->rank) {
        struct dsu_node *t;
        t = a;
        a = b;
        b = t;
    }
    b->parent = a;
    if (a->rank == b->rank)
        a->rank++;
    return 1;
}

static int kruskal(void)
{
    int i;
    int cost;
    int taken;

    collect_edges();
    sort_edges();
    cost = 0;
    taken = 0;
    for (i = 0; i < n_edge_recs; i++) {
        struct dsu_node *da;
        struct dsu_node *db;
        da = dsu_for(edge_pool[i].a);
        db = dsu_for(edge_pool[i].b);
        if (dsu_union(da, db)) {
            cost += edge_pool[i].weight;
            taken++;
        }
    }
    printf("kruskal: %d edges taken, cost %d\n", taken, cost);
    return cost;
}

int main(void)
{
    struct vertex *root;
    int kcost;

    build_example();
    root = find_vertex(0);
    prim(root);
    print_tree();
    kcost = kruskal();
    printf("prim %s kruskal\n", kcost == tree_cost ? "agrees with" : "DISAGREES with");
    return kcost == tree_cost ? 0 : 1;
}
