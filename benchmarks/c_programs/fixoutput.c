/* fixoutput - normalize whitespace and expand tabs in a text stream.
 *
 * Stand-in for the Austin benchmark "fixoutput": a classic character
 * filter.  Pointer traffic is over char buffers and positions within
 * them; no structures are cast.
 */

#define LINEMAX 512
#define TABSTOP 8

static char inbuf[LINEMAX];
static char outbuf[LINEMAX * TABSTOP];
static int lines_seen;
static int tabs_expanded;
static int trailing_trimmed;

static char *skip_spaces(char *s)
{
    while (*s == ' ' || *s == '\t')
        s++;
    return s;
}

static char *line_end(char *s)
{
    char *e;

    e = s;
    while (*e != '\0' && *e != '\n')
        e++;
    return e;
}

static int expand_line(char *src, char *dst, int limit)
{
    char *p;
    char *q;
    int col;

    p = src;
    q = dst;
    col = 0;
    while (*p != '\0' && *p != '\n') {
        if (*p == '\t') {
            tabs_expanded++;
            do {
                if (q - dst >= limit - 1)
                    break;
                *q++ = ' ';
                col++;
            } while (col % TABSTOP != 0);
        } else {
            if (q - dst >= limit - 1)
                break;
            *q++ = *p;
            col++;
        }
        p++;
    }
    *q = '\0';
    return q - dst;
}

static int trim_trailing(char *s, int len)
{
    char *e;

    e = s + len;
    while (e > s && (e[-1] == ' ' || e[-1] == '\t')) {
        e--;
        trailing_trimmed++;
    }
    *e = '\0';
    return e - s;
}

static void emit(char *s)
{
    char *body;

    body = skip_spaces(s);
    if (*body == '\0')
        puts("");
    else
        puts(s);
}

/* ------------------------------------------------------------------ */
/* Wrap mode and column statistics: the filter can also re-flow long   */
/* lines at word boundaries and keep a histogram of line lengths.      */
/* ------------------------------------------------------------------ */

#define WRAPCOL 72
#define HISTBINS 8

struct line_stats {
    long total_chars;
    int longest;
    int shortest;
    int histogram[HISTBINS];
    int wrapped_lines;
};

static struct line_stats stats;

static void note_line(struct line_stats *st, int len)
{
    int bin;

    st->total_chars += len;
    if (len > st->longest)
        st->longest = len;
    if (st->shortest == 0 || len < st->shortest)
        st->shortest = len;
    bin = len * HISTBINS / (LINEMAX * TABSTOP);
    if (bin >= HISTBINS)
        bin = HISTBINS - 1;
    st->histogram[bin]++;
}

static char *last_break_before(char *start, char *limit)
{
    char *p;
    char *brk;

    brk = 0;
    for (p = start; p < limit && *p != '\0'; p++) {
        if (*p == ' ')
            brk = p;
    }
    return brk;
}

static void emit_wrapped(struct line_stats *st, char *s)
{
    char *start;
    char *brk;
    char saved;

    start = s;
    while ((int)strlen(start) > WRAPCOL) {
        brk = last_break_before(start, start + WRAPCOL);
        if (brk == 0)
            break;
        saved = *brk;
        *brk = '\0';
        emit(start);
        *brk = saved;
        start = brk + 1;
        st->wrapped_lines++;
    }
    emit(start);
}

static void report_stats(struct line_stats *st, int lines)
{
    int i;

    if (lines == 0)
        return;
    printf("lines: %d  avg len: %ld  min/max: %d/%d  wrapped: %d\n",
           lines, st->total_chars / lines, st->shortest, st->longest,
           st->wrapped_lines);
    printf("histogram:");
    for (i = 0; i < HISTBINS; i++)
        printf(" %d", st->histogram[i]);
    printf("\n");
}

static int read_line(FILE *in, char *buf, int max)
{
    char *got;

    got = fgets(buf, max, in);
    if (got == 0)
        return 0;
    return 1;
}

int main(void)
{
    FILE *in;
    int len;
    char *end;

    in = fopen("input.txt", "r");
    if (in == 0)
        return 1;
    while (read_line(in, inbuf, LINEMAX)) {
        lines_seen++;
        end = line_end(inbuf);
        *end = '\0';
        len = expand_line(inbuf, outbuf, LINEMAX * TABSTOP);
        len = trim_trailing(outbuf, len);
        note_line(&stats, len);
        emit_wrapped(&stats, outbuf);
    }
    fclose(in);
    printf("%d lines, %d tabs, %d trims\n",
           lines_seen, tabs_expanded, trailing_trimmed);
    report_stats(&stats, lines_seen);
    return 0;
}
