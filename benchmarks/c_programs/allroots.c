/* allroots - find all roots of a real polynomial by deflation.
 *
 * Stand-in for the Landi benchmark "allroots": heavy array-of-double
 * traffic, pointers into arrays, and pointer parameters -- but no
 * structure casting (structures are used only at declared types).
 */

#define MAXDEG 32
#define MAXITER 200
#define EPS 0.0000001

struct poly {
    int degree;
    double coef[MAXDEG + 1];
};

struct rootinfo {
    double value;
    int iterations;
    int converged;
};

static struct poly work;
static struct rootinfo roots[MAXDEG];
static int nroots;

static double eval(struct poly *p, double x)
{
    double acc;
    int i;

    acc = 0.0;
    for (i = p->degree; i >= 0; i--)
        acc = acc * x + p->coef[i];
    return acc;
}

static double eval_deriv(struct poly *p, double x)
{
    double acc;
    int i;

    acc = 0.0;
    for (i = p->degree; i >= 1; i--)
        acc = acc * x + p->coef[i] * (double)i;
    return acc;
}

static void deflate(struct poly *p, double root)
{
    double rem;
    double save;
    int i;

    rem = p->coef[p->degree];
    for (i = p->degree - 1; i >= 0; i--) {
        save = p->coef[i];
        p->coef[i] = rem;
        rem = save + rem * root;
    }
    p->degree = p->degree - 1;
}

static int newton(struct poly *p, double guess, struct rootinfo *out)
{
    double x;
    double fx;
    double dfx;
    int iter;

    x = guess;
    for (iter = 0; iter < MAXITER; iter++) {
        fx = eval(p, x);
        dfx = eval_deriv(p, x);
        if (fabs(dfx) < EPS)
            break;
        x = x - fx / dfx;
        if (fabs(fx) < EPS) {
            out->value = x;
            out->iterations = iter;
            out->converged = 1;
            return 1;
        }
    }
    out->value = x;
    out->iterations = MAXITER;
    out->converged = 0;
    return 0;
}

static void copy_poly(struct poly *dst, struct poly *src)
{
    int i;

    dst->degree = src->degree;
    for (i = 0; i <= src->degree; i++)
        dst->coef[i] = src->coef[i];
}

static void find_all(struct poly *p)
{
    struct rootinfo info;
    double guess;

    copy_poly(&work, p);
    nroots = 0;
    guess = 0.5;
    while (work.degree > 0) {
        if (!newton(&work, guess, &info)) {
            guess = guess * 2.0 + 1.0;
            if (guess > 1000000.0)
                break;
            continue;
        }
        roots[nroots] = info;
        nroots++;
        deflate(&work, info.value);
        guess = 0.5;
    }
}

static void normalize_poly(struct poly *p)
{
    double lead;
    int i;

    while (p->degree > 0 && fabs(p->coef[p->degree]) < EPS)
        p->degree = p->degree - 1;
    lead = p->coef[p->degree];
    if (fabs(lead) < EPS)
        return;
    for (i = 0; i <= p->degree; i++)
        p->coef[i] = p->coef[i] / lead;
}

static void report(void)
{
    int i;
    struct rootinfo *r;

    for (i = 0; i < nroots; i++) {
        r = &roots[i];
        printf("root %d: %f (%d iterations)\n", i, r->value, r->iterations);
    }
}

int main(void)
{
    struct poly p;
    int i;

    /* (x - 1)(x - 2)(x - 3) = x^3 - 6x^2 + 11x - 6 */
    p.degree = 3;
    p.coef[0] = -6.0;
    p.coef[1] = 11.0;
    p.coef[2] = -6.0;
    p.coef[3] = 1.0;
    for (i = 4; i <= MAXDEG; i++)
        p.coef[i] = 0.0;

    normalize_poly(&p);
    find_all(&p);
    report();
    return nroots == 3 ? 0 : 1;
}
