/* lex315 - hand-written lexer with variant tokens.
 *
 * Stand-in for the Landi benchmark "lex315".  Casting idioms: token
 * records share a common initial sequence (kind + line) and diverge into
 * identifier / number / string variants; the parser driver walks a token
 * list through the common view and downcasts per kind.  A union-based
 * value cell is also exercised.
 */

#define TK_IDENT 1
#define TK_NUMBER 2
#define TK_STRING 3
#define TK_PUNCT 4
#define TK_EOF 5

struct token {
    int kind;
    int line;
    struct token *next;
};

struct ident_token {
    int kind;
    int line;
    struct token *next;
    char *name;
    struct ident_token *hash_link;
};

struct number_token {
    int kind;
    int line;
    struct token *next;
    long value;
    int is_float;
};

struct string_token {
    int kind;
    int line;
    struct token *next;
    char *chars;
    int length;
};

struct punct_token {
    int kind;
    int line;
    struct token *next;
    int ch;
};

union lexval {
    long num;
    char *str;
    struct ident_token *id;
};

static struct token *tokens_head;
static struct token *tokens_tail;
static struct ident_token *ident_hash[31];
static int cur_line;
static int ntokens;
static union lexval yylval;

static void append_token(struct token *t)
{
    t->next = 0;
    if (tokens_tail == 0)
        tokens_head = t;
    else
        tokens_tail->next = t;
    tokens_tail = t;
    ntokens++;
}

static struct ident_token *intern_ident(char *name)
{
    unsigned int h;
    struct ident_token *t;
    char *p;

    h = 0;
    for (p = name; *p != '\0'; p++)
        h = h * 31 + (unsigned int)*p;
    h = h % 31;
    for (t = ident_hash[h]; t != 0; t = t->hash_link) {
        if (strcmp(t->name, name) == 0)
            return t;
    }
    t = (struct ident_token *)malloc(sizeof(struct ident_token));
    t->kind = TK_IDENT;
    t->line = cur_line;
    t->name = strdup(name);
    t->hash_link = ident_hash[h];
    ident_hash[h] = t;
    return t;
}

static void lex_ident(char *text)
{
    struct ident_token *t;

    t = intern_ident(text);
    yylval.id = t;
    append_token((struct token *)t);
}

static void lex_number(long v)
{
    struct number_token *t;

    t = (struct number_token *)malloc(sizeof(struct number_token));
    t->kind = TK_NUMBER;
    t->line = cur_line;
    t->value = v;
    t->is_float = 0;
    yylval.num = v;
    append_token((struct token *)t);
}

static void lex_string(char *chars)
{
    struct string_token *t;

    t = (struct string_token *)malloc(sizeof(struct string_token));
    t->kind = TK_STRING;
    t->line = cur_line;
    t->chars = strdup(chars);
    t->length = (int)strlen(chars);
    yylval.str = t->chars;
    append_token((struct token *)t);
}

static void lex_punct(int c)
{
    struct punct_token *t;

    t = (struct punct_token *)malloc(sizeof(struct punct_token));
    t->kind = TK_PUNCT;
    t->line = cur_line;
    t->ch = c;
    append_token((struct token *)t);
}

static void tokenize(char *src)
{
    char *p;
    char word[64];
    int wi;

    cur_line = 1;
    p = src;
    while (*p != '\0') {
        if (*p == '\n') {
            cur_line++;
            p++;
        } else if (isspace(*p)) {
            p++;
        } else if (isalpha(*p) || *p == '_') {
            wi = 0;
            while ((isalnum(*p) || *p == '_') && wi < 63)
                word[wi++] = *p++;
            word[wi] = '\0';
            lex_ident(word);
        } else if (isdigit(*p)) {
            long v;
            v = 0;
            while (isdigit(*p))
                v = v * 10 + (*p++ - '0');
            lex_number(v);
        } else if (*p == '"') {
            wi = 0;
            p++;
            while (*p != '"' && *p != '\0' && wi < 63)
                word[wi++] = *p++;
            word[wi] = '\0';
            if (*p == '"')
                p++;
            lex_string(word);
        } else {
            lex_punct(*p);
            p++;
        }
    }
}

static int count_kind(int kind)
{
    struct token *t;
    int n;

    n = 0;
    for (t = tokens_head; t != 0; t = t->next) {
        if (t->kind == kind)
            n++;
    }
    return n;
}

static long sum_numbers(void)
{
    struct token *t;
    long sum;

    sum = 0;
    for (t = tokens_head; t != 0; t = t->next) {
        if (t->kind == TK_NUMBER)
            sum += ((struct number_token *)t)->value;
    }
    return sum;
}

static void print_idents(void)
{
    struct token *t;

    for (t = tokens_head; t != 0; t = t->next) {
        if (t->kind == TK_IDENT)
            printf("id@%d: %s\n", t->line,
                   ((struct ident_token *)t)->name);
    }
}

int main(void)
{
    tokenize("x = 10 + y;\nprint(\"total\", x * 2);\nx = x + 32;\n");
    print_idents();
    printf("%d tokens: %d idents, %d numbers, %d strings, %d puncts\n",
           ntokens, count_kind(TK_IDENT), count_kind(TK_NUMBER),
           count_kind(TK_STRING), count_kind(TK_PUNCT));
    printf("numbers sum to %ld\n", sum_numbers());
    return 0;
}
