/* less177 - pager-like buffer manager.
 *
 * Stand-in for "less-177", the paper's worst case for Collapse on Cast
 * (Figure 4/5: largest precision and time gap vs Offsets).  The idioms:
 * a generic doubly-linked block list whose links sit *in the middle* of
 * the payload struct (so the generic view and the typed view disagree
 * beyond the first field), plus position caches cast between views.
 */

#define BLOCKSIZE 256
#define NPOOL 16

/* Generic list view: only valid when overlaid on a struct whose first
 * two members are the links. */
struct links {
    struct links *next;
    struct links *prev;
};

struct block {
    struct block *next;
    struct block *prev;
    long file_pos;
    int nbytes;
    char data[BLOCKSIZE];
};

struct position {
    long file_pos;
    struct block *block;
    int offset;
};

struct screen_line {
    struct position start;
    struct position end;
    int width;
};

static struct links chain_head;
static struct block *free_pool;
static struct screen_line top_line;
static struct screen_line bottom_line;
static long max_pos_seen;

static void link_after(struct links *at, struct links *item)
{
    item->next = at->next;
    item->prev = at;
    if (at->next != 0)
        at->next->prev = item;
    at->next = item;
}

static void unlink_item(struct links *item)
{
    if (item->prev != 0)
        item->prev->next = item->next;
    if (item->next != 0)
        item->next->prev = item->prev;
    item->next = 0;
    item->prev = 0;
}

static struct block *alloc_block(void)
{
    struct block *b;

    if (free_pool != 0) {
        b = free_pool;
        free_pool = b->next;
    } else {
        b = (struct block *)malloc(sizeof(struct block));
    }
    b->next = 0;
    b->prev = 0;
    b->nbytes = 0;
    b->file_pos = -1;
    return b;
}

static void release_block(struct block *b)
{
    unlink_item((struct links *)b);
    b->next = free_pool;
    free_pool = b;
}

static struct block *chain_first(void)
{
    return (struct block *)chain_head.next;
}

static void append_block(struct block *b)
{
    struct links *tail;

    tail = &chain_head;
    while (tail->next != 0)
        tail = tail->next;
    link_after(tail, (struct links *)b);
}

static struct block *block_for_pos(long pos)
{
    struct block *b;

    for (b = chain_first(); b != 0; b = b->next) {
        if (b->file_pos <= pos && pos < b->file_pos + b->nbytes)
            return b;
    }
    return 0;
}

static void set_position(struct position *p, long pos)
{
    struct block *b;

    b = block_for_pos(pos);
    p->file_pos = pos;
    p->block = b;
    p->offset = b != 0 ? (int)(pos - b->file_pos) : 0;
}

static int char_at(struct position *p)
{
    if (p->block == 0)
        return -1;
    return p->block->data[p->offset];
}

static void fill_block(struct block *b, long pos)
{
    int i;

    b->file_pos = pos;
    b->nbytes = BLOCKSIZE;
    for (i = 0; i < BLOCKSIZE; i++)
        b->data[i] = (char)('a' + (int)((pos + i) % 26));
    if (pos + BLOCKSIZE > max_pos_seen)
        max_pos_seen = pos + BLOCKSIZE;
}

static void load_range(long from, long to)
{
    long pos;
    struct block *b;

    for (pos = from; pos < to; pos += BLOCKSIZE) {
        if (block_for_pos(pos) != 0)
            continue;
        b = alloc_block();
        fill_block(b, pos);
        append_block(b);
    }
}

static void measure_line(struct screen_line *ln)
{
    struct position p;
    int w;

    p = ln->start;
    w = 0;
    while (p.file_pos < ln->end.file_pos) {
        if (char_at(&p) < 0)
            break;
        w++;
        set_position(&p, p.file_pos + 1);
    }
    ln->width = w;
}

static void drop_before(long pos)
{
    struct block *b;
    struct block *next;

    for (b = chain_first(); b != 0; b = next) {
        next = b->next;
        if (b->file_pos + b->nbytes <= pos)
            release_block(b);
    }
}

/* ------------------------------------------------------------------ */
/* Search: scan for a pattern across block boundaries, like less's /.  */
/* ------------------------------------------------------------------ */

struct search_state {
    char pattern[32];
    int patlen;
    long last_hit;
    int hits;
    int wrapped;
};

static struct search_state searcher;

static int char_at_pos(long pos)
{
    struct block *b;

    b = block_for_pos(pos);
    if (b == 0)
        return -1;
    return b->data[pos - b->file_pos];
}

static long search_forward(struct search_state *st, long from)
{
    long pos;
    int i;
    int ok;

    for (pos = from; pos + st->patlen <= max_pos_seen; pos++) {
        ok = 1;
        for (i = 0; i < st->patlen; i++) {
            if (char_at_pos(pos + i) != st->pattern[i]) {
                ok = 0;
                break;
            }
        }
        if (ok) {
            st->last_hit = pos;
            st->hits++;
            return pos;
        }
    }
    st->wrapped = 1;
    return -1;
}

static void set_pattern(struct search_state *st, char *pat)
{
    strncpy(st->pattern, pat, 31);
    st->pattern[31] = '\0';
    st->patlen = (int)strlen(st->pattern);
    st->hits = 0;
    st->wrapped = 0;
    st->last_hit = -1;
}

/* ------------------------------------------------------------------ */
/* Line index: positions of line starts, rebuilt lazily, like less's   */
/* linenum cache.  The index entries join the generic chain too (cast  */
/* through struct links), exercising the mid-struct link idiom again.  */
/* ------------------------------------------------------------------ */

struct line_entry {
    struct line_entry *next;
    struct line_entry *prev;
    long pos;
    int lineno;
};

static struct links line_index_head;
static int lines_indexed;

static void index_lines(int line_every)
{
    long pos;
    int count;
    struct line_entry *e;

    lines_indexed = 0;
    line_index_head.next = 0;
    for (pos = 0; pos < max_pos_seen; pos++) {
        if ((pos % line_every) != 0)
            continue;
        e = (struct line_entry *)malloc(sizeof(struct line_entry));
        e->pos = pos;
        e->lineno = (int)(pos / line_every) + 1;
        link_after(&line_index_head, (struct links *)e);
        lines_indexed++;
        count = lines_indexed;
        (void)count;
    }
}

static int lineno_for_pos(long pos)
{
    struct line_entry *e;
    struct line_entry *best;

    best = 0;
    for (e = (struct line_entry *)line_index_head.next; e != 0; e = e->next) {
        if (e->pos <= pos && (best == 0 || e->pos > best->pos))
            best = e;
    }
    return best != 0 ? best->lineno : 0;
}

int main(void)
{
    int i;
    long hit;

    chain_head.next = 0;
    chain_head.prev = 0;

    load_range(0, BLOCKSIZE * NPOOL);
    set_position(&top_line.start, 10);
    set_position(&top_line.end, 80);
    set_position(&bottom_line.start, BLOCKSIZE * 3 + 5);
    set_position(&bottom_line.end, BLOCKSIZE * 3 + 77);
    measure_line(&top_line);
    measure_line(&bottom_line);
    printf("top width %d, bottom width %d, max pos %ld\n",
           top_line.width, bottom_line.width, max_pos_seen);

    set_pattern(&searcher, "xyz");
    hit = search_forward(&searcher, 0);
    printf("search 'xyz': %s at %ld (%d hits)\n",
           hit >= 0 ? "found" : "not found", hit, searcher.hits);
    set_pattern(&searcher, "abc");
    hit = search_forward(&searcher, 0);
    if (hit >= 0) {
        index_lines(80);
        printf("search 'abc': found at %ld (line ~%d, %d indexed)\n",
               hit, lineno_for_pos(hit), lines_indexed);
        hit = search_forward(&searcher, hit + 1);
        printf("next hit at %ld\n", hit);
    }

    drop_before(BLOCKSIZE * 2);
    for (i = 0; i < 4; i++) {
        struct block *b;
        b = alloc_block();
        fill_block(b, max_pos_seen);
        append_block(b);
    }
    printf("first block now at %ld\n",
           chain_first() != 0 ? chain_first()->file_pos : -1L);
    return 0;
}
