/* eqntott - boolean equation to truth-table converter core.
 *
 * Stand-in for SPEC "eqntott".  Casting idioms: product terms are
 * copied between differently shaped record types with block copies
 * (struct assignment through casted pointers and memcpy), and a compact
 * representation overlays the full one (common initial sequence).
 */

#define MAXVARS 16
#define MAXTERMS 64

/* Full representation: variables + bookkeeping. */
struct pterm {
    short literals[MAXVARS];
    int nvars;
    int weight;
    struct pterm *next;
};

/* Compact overlay: shares the literal block (common initial sequence
 * with struct pterm up to literals). */
struct cterm {
    short literals[MAXVARS];
    int nvars;
};

struct table {
    struct pterm *terms;
    int nterms;
    int nvars;
};

static struct table ontab;
static struct table offtab;
static struct pterm storage[MAXTERMS];
static int storage_used;

static struct pterm *new_term(struct table *t)
{
    struct pterm *p;

    if (storage_used >= MAXTERMS)
        return 0;
    p = &storage[storage_used];
    storage_used++;
    p->nvars = t->nvars;
    p->weight = 0;
    p->next = t->terms;
    t->terms = p;
    t->nterms++;
    return p;
}

static void set_literal(struct pterm *p, int var, int value)
{
    p->literals[var] = (short)value;
}

static int term_weight(struct pterm *p)
{
    int i;
    int w;

    w = 0;
    for (i = 0; i < p->nvars; i++) {
        if (p->literals[i] != 2)
            w++;
    }
    return w;
}

static void copy_compact(struct cterm *dst, struct pterm *src)
{
    /* Block copy through the compact view: only the common initial
     * sequence (literals + nvars) is transferred. */
    *dst = *(struct cterm *)src;
}

static int compact_equal(struct cterm *a, struct cterm *b)
{
    int i;

    if (a->nvars != b->nvars)
        return 0;
    for (i = 0; i < a->nvars; i++) {
        if (a->literals[i] != b->literals[i])
            return 0;
    }
    return 1;
}

static int merge_distance(struct pterm *a, struct pterm *b)
{
    int i;
    int d;

    d = 0;
    for (i = 0; i < a->nvars; i++) {
        if (a->literals[i] != b->literals[i])
            d++;
    }
    return d;
}

static int try_merge(struct table *t)
{
    struct pterm *a;
    struct pterm *b;
    int merged;

    merged = 0;
    for (a = t->terms; a != 0; a = a->next) {
        for (b = a->next; b != 0; b = b->next) {
            if (merge_distance(a, b) == 1) {
                int i;
                for (i = 0; i < a->nvars; i++) {
                    if (a->literals[i] != b->literals[i])
                        set_literal(a, i, 2);
                }
                b->weight = -1; /* dead */
                merged++;
            }
        }
    }
    return merged;
}

static void sweep_dead(struct table *t)
{
    struct pterm **link;
    struct pterm *p;

    link = &t->terms;
    while ((p = *link) != 0) {
        if (p->weight < 0) {
            *link = p->next;
            t->nterms--;
        } else {
            link = &p->next;
        }
    }
}

static int truth_value(struct table *t, unsigned int assignment)
{
    struct pterm *p;
    int i;
    int ok;

    for (p = t->terms; p != 0; p = p->next) {
        ok = 1;
        for (i = 0; i < p->nvars; i++) {
            int bit;
            bit = (assignment >> i) & 1;
            if (p->literals[i] == 1 && bit == 0)
                ok = 0;
            if (p->literals[i] == 0 && bit == 1)
                ok = 0;
        }
        if (ok)
            return 1;
    }
    return 0;
}

static void dump_table(struct table *t, char *tag)
{
    struct pterm *p;
    int i;

    printf("%s (%d terms):\n", tag, t->nterms);
    for (p = t->terms; p != 0; p = p->next) {
        printf("  ");
        for (i = 0; i < p->nvars; i++) {
            int v;
            v = p->literals[i];
            putchar(v == 2 ? '-' : (v == 1 ? '1' : '0'));
        }
        printf(" (w=%d)\n", p->weight);
    }
}

/* ------------------------------------------------------------------ */
/* PLA output and cover verification: print the minimized table in     */
/* Berkeley PLA format and check it still covers the original          */
/* function, as eqntott's back end does.                               */
/* ------------------------------------------------------------------ */

static int saved_truth[1 << MAXVARS];
static int saved_count;

static void snapshot_truth(struct table *t)
{
    unsigned int a;
    unsigned int limit;

    limit = 1u << t->nvars;
    for (a = 0; a < limit && a < (1u << MAXVARS); a++)
        saved_truth[a] = truth_value(t, a);
    saved_count = (int)limit;
}

static int cover_preserved(struct table *t)
{
    unsigned int a;

    for (a = 0; a < (unsigned int)saved_count; a++) {
        if (truth_value(t, a) != saved_truth[a])
            return 0;
    }
    return 1;
}

static void print_pla(struct table *t, char *name)
{
    struct pterm *p;
    int i;

    printf(".i %d\n.o 1\n.p %d\n", t->nvars, t->nterms);
    for (p = t->terms; p != 0; p = p->next) {
        for (i = 0; i < p->nvars; i++) {
            int v;
            v = p->literals[i];
            putchar(v == 2 ? '-' : (v == 1 ? '1' : '0'));
        }
        printf(" 1\n");
    }
    printf(".e  (%s)\n", name);
}

/* Complement cover: terms the function is 0 on, built by scanning the
 * truth table -- populates the OFF-set the way eqntott does for the
 * two-output PLA form. */

static void build_offset(struct table *on, struct table *off)
{
    unsigned int a;
    unsigned int limit;
    struct pterm *p;
    int i;

    limit = 1u << on->nvars;
    for (a = 0; a < limit; a++) {
        if (truth_value(on, a))
            continue;
        p = new_term(off);
        if (p == 0)
            return;
        for (i = 0; i < on->nvars; i++)
            set_literal(p, i, (int)((a >> i) & 1));
        p->weight = term_weight(p);
    }
}

static int covers_disjoint(struct table *on, struct table *off)
{
    unsigned int a;
    unsigned int limit;

    limit = 1u << on->nvars;
    for (a = 0; a < limit; a++) {
        if (truth_value(on, a) && truth_value(off, a))
            return 0;
    }
    return 1;
}

int main(void)
{
    struct pterm *p;
    struct cterm c1;
    struct cterm c2;
    unsigned int a;
    int ones;

    ontab.nvars = 3;
    offtab.nvars = 3;

    /* f = a'bc + abc + ab'c  (three minterms) */
    p = new_term(&ontab);
    set_literal(p, 0, 0); set_literal(p, 1, 1); set_literal(p, 2, 1);
    p = new_term(&ontab);
    set_literal(p, 0, 1); set_literal(p, 1, 1); set_literal(p, 2, 1);
    p = new_term(&ontab);
    set_literal(p, 0, 1); set_literal(p, 1, 0); set_literal(p, 2, 1);

    for (p = ontab.terms; p != 0; p = p->next)
        p->weight = term_weight(p);

    copy_compact(&c1, ontab.terms);
    copy_compact(&c2, ontab.terms->next);
    printf("first two terms %s\n",
           compact_equal(&c1, &c2) ? "equal" : "differ");

    snapshot_truth(&ontab);
    while (try_merge(&ontab) > 0)
        sweep_dead(&ontab);

    dump_table(&ontab, "minimized ON-set");
    printf("cover %s by minimization\n",
           cover_preserved(&ontab) ? "preserved" : "BROKEN");

    build_offset(&ontab, &offtab);
    while (try_merge(&offtab) > 0)
        sweep_dead(&offtab);
    printf("ON and OFF covers %s\n",
           covers_disjoint(&ontab, &offtab) ? "disjoint" : "OVERLAP");

    print_pla(&ontab, "on");
    print_pla(&offtab, "off");

    ones = 0;
    for (a = 0; a < 8; a++)
        ones += truth_value(&ontab, a);
    printf("truth table has %d ones of 8\n", ones);
    return 0;
}
