/* loader - relocating object-file loader.
 *
 * Stand-in for the Landi benchmark "loader".  Casting idioms: an object
 * file arrives as one byte image; section headers, symbol records and
 * relocation records are all views cast out of the image at computed
 * offsets (pointer arithmetic + casts), then linked into typed lists.
 */

#define IMAGESIZE 2048
#define SEC_TEXT 1
#define SEC_DATA 2
#define SEC_SYMS 3
#define SEC_RELOC 4

struct sec_header {
    int kind;
    int offset;
    int length;
    int count;
};

struct sym_record {
    char name[12];
    int section;
    int value;
};

struct reloc_record {
    int where;
    int symindex;
};

struct loaded_sym {
    struct loaded_sym *next;
    char *name;
    int address;
};

static unsigned char image[IMAGESIZE];
static int image_len;
static struct loaded_sym *symtab;
static int text_base;
static int data_base;
static int relocs_applied;

static struct sec_header *section_at(int off)
{
    return (struct sec_header *)&image[off];
}

static struct sym_record *sym_at(struct sec_header *h, int i)
{
    unsigned char *base;

    base = &image[h->offset];
    return (struct sym_record *)(base + i * (int)sizeof(struct sym_record));
}

static struct reloc_record *reloc_at(struct sec_header *h, int i)
{
    unsigned char *base;

    base = &image[h->offset];
    return (struct reloc_record *)(base + i * (int)sizeof(struct reloc_record));
}

static void add_symbol(char *name, int address)
{
    struct loaded_sym *s;

    s = (struct loaded_sym *)malloc(sizeof(struct loaded_sym));
    s->name = strdup(name);
    s->address = address;
    s->next = symtab;
    symtab = s;
}

static struct loaded_sym *find_symbol(char *name)
{
    struct loaded_sym *s;

    for (s = symtab; s != 0; s = s->next) {
        if (strcmp(s->name, name) == 0)
            return s;
    }
    return 0;
}

static void load_symbols(struct sec_header *h)
{
    int i;
    struct sym_record *r;
    int base;

    for (i = 0; i < h->count; i++) {
        r = sym_at(h, i);
        base = r->section == SEC_TEXT ? text_base : data_base;
        add_symbol(r->name, base + r->value);
    }
}

static void apply_relocs(struct sec_header *h, struct sec_header *symsec)
{
    int i;
    struct reloc_record *r;
    struct sym_record *target;
    struct loaded_sym *resolved;
    int *patch;

    for (i = 0; i < h->count; i++) {
        r = reloc_at(h, i);
        target = sym_at(symsec, r->symindex);
        resolved = find_symbol(target->name);
        if (resolved == 0)
            continue;
        patch = (int *)&image[text_base + r->where];
        *patch = resolved->address;
        relocs_applied++;
    }
}

static void build_image(void)
{
    struct sec_header *h;
    struct sym_record *s;
    struct reloc_record *r;
    int off;

    /* Layout: 4 headers, then text, then syms, then relocs. */
    off = 4 * (int)sizeof(struct sec_header);

    h = section_at(0);
    h->kind = SEC_TEXT;
    h->offset = off;
    h->length = 64;
    h->count = 0;
    off += 64;

    h = section_at((int)sizeof(struct sec_header));
    h->kind = SEC_SYMS;
    h->offset = off;
    h->count = 2;
    h->length = h->count * (int)sizeof(struct sym_record);
    off += h->length;

    s = (struct sym_record *)&image[h->offset];
    strcpy(s->name, "entry");
    s->section = SEC_TEXT;
    s->value = 0;
    s = (struct sym_record *)(&image[h->offset] + sizeof(struct sym_record));
    strcpy(s->name, "counter");
    s->section = SEC_DATA;
    s->value = 8;

    h = section_at(2 * (int)sizeof(struct sec_header));
    h->kind = SEC_RELOC;
    h->offset = off;
    h->count = 2;
    h->length = h->count * (int)sizeof(struct reloc_record);
    off += h->length;

    r = (struct reloc_record *)&image[h->offset];
    r->where = 4;
    r->symindex = 1;
    r = (struct reloc_record *)(&image[h->offset] + sizeof(struct reloc_record));
    r->where = 12;
    r->symindex = 0;

    image_len = off;
}

/* ------------------------------------------------------------------ */
/* Undefined-reference checking and a tiny dynamic-linking step: bind  */
/* unresolved names against a table of "shared library" exports.       */
/* ------------------------------------------------------------------ */

struct export_entry {
    char *name;
    int address;
};

static struct export_entry lib_exports[] = {
    { "printf", 90000 },
    { "malloc", 90016 },
    { "strcmp", 90032 },
    { 0, 0 },
};

struct unresolved {
    struct unresolved *next;
    char *name;
    int where;
};

static struct unresolved *undef_list;
static int dynamic_bound;

static void note_unresolved(char *name, int where)
{
    struct unresolved *u;

    u = (struct unresolved *)malloc(sizeof(struct unresolved));
    u->name = strdup(name);
    u->where = where;
    u->next = undef_list;
    undef_list = u;
}

static int lookup_export(char *name)
{
    struct export_entry *e;

    for (e = lib_exports; e->name != 0; e++) {
        if (strcmp(e->name, name) == 0)
            return e->address;
    }
    return -1;
}

static void bind_dynamic(void)
{
    struct unresolved *u;
    int addr;

    for (u = undef_list; u != 0; u = u->next) {
        addr = lookup_export(u->name);
        if (addr < 0)
            continue;
        add_symbol(u->name, addr);
        dynamic_bound++;
    }
}

static void check_references(void)
{
    /* Imagine the text section calls printf: record it unresolved, then
     * bind it dynamically. */
    if (find_symbol("printf") == 0)
        note_unresolved("printf", 24);
    if (find_symbol("strcmp") == 0)
        note_unresolved("strcmp", 40);
    if (find_symbol("no_such_fn") == 0)
        note_unresolved("no_such_fn", 56);
    bind_dynamic();
}

static int count_unbound(void)
{
    struct unresolved *u;
    int n;

    n = 0;
    for (u = undef_list; u != 0; u = u->next) {
        if (find_symbol(u->name) == 0)
            n++;
    }
    return n;
}

int main(void)
{
    struct sec_header *text;
    struct sec_header *syms;
    struct sec_header *relocs;
    struct loaded_sym *s;

    build_image();
    text_base = 4096;
    data_base = 8192;

    text = section_at(0);
    syms = section_at((int)sizeof(struct sec_header));
    relocs = section_at(2 * (int)sizeof(struct sec_header));

    load_symbols(syms);
    apply_relocs(relocs, syms);
    check_references();

    for (s = symtab; s != 0; s = s->next)
        printf("%-12s -> %d\n", s->name, s->address);
    printf("image %d bytes, text at %d, %d relocs, %d dynamic, %d unbound\n",
           image_len, text->offset, relocs_applied, dynamic_bound,
           count_unbound());
    return 0;
}
