/* anagram - group dictionary words into anagram classes.
 *
 * Stand-in for the Austin benchmark "anagram": a hash table whose
 * buckets chain heap-allocated word records.  Structures are used only
 * at their declared types (no casting), but there is plenty of pointer
 * traffic: hash chains, string duplication, sorted signatures.
 */

#define HASHSIZE 211
#define SIGMAX 64

struct word {
    struct word *next_in_class;
    char *text;
    int length;
};

struct anaclass {
    struct anaclass *next;
    char sig[SIGMAX];
    struct word *words;
    int count;
};

static struct anaclass *table[HASHSIZE];
static int total_words;
static int total_classes;
static int best_count;
static struct anaclass *best_class;

static unsigned int hash_sig(char *sig)
{
    unsigned int h;
    char *p;

    h = 0;
    for (p = sig; *p != '\0'; p++)
        h = h * 31 + (unsigned int)*p;
    return h % HASHSIZE;
}

static void make_signature(char *word, char *sig)
{
    int counts[26];
    int i;
    char *p;
    char *q;

    for (i = 0; i < 26; i++)
        counts[i] = 0;
    for (p = word; *p != '\0'; p++) {
        if (isalpha(*p))
            counts[tolower(*p) - 'a']++;
    }
    q = sig;
    for (i = 0; i < 26; i++) {
        int k;
        for (k = 0; k < counts[i]; k++)
            *q++ = (char)('a' + i);
    }
    *q = '\0';
}

static struct anaclass *find_class(char *sig)
{
    unsigned int h;
    struct anaclass *c;

    h = hash_sig(sig);
    for (c = table[h]; c != 0; c = c->next) {
        if (strcmp(c->sig, sig) == 0)
            return c;
    }
    c = (struct anaclass *)malloc(sizeof(struct anaclass));
    strcpy(c->sig, sig);
    c->words = 0;
    c->count = 0;
    c->next = table[h];
    table[h] = c;
    total_classes++;
    return c;
}

static void add_word(char *text)
{
    char sig[SIGMAX];
    struct anaclass *c;
    struct word *w;

    make_signature(text, sig);
    if (sig[0] == '\0')
        return;
    c = find_class(sig);
    w = (struct word *)malloc(sizeof(struct word));
    w->text = strdup(text);
    w->length = (int)strlen(text);
    w->next_in_class = c->words;
    c->words = w;
    c->count++;
    total_words++;
    if (c->count > best_count) {
        best_count = c->count;
        best_class = c;
    }
}

static void report_class(struct anaclass *c)
{
    struct word *w;

    printf("%s:", c->sig);
    for (w = c->words; w != 0; w = w->next_in_class)
        printf(" %s", w->text);
    printf("\n");
}

static void report_all(void)
{
    int i;
    struct anaclass *c;

    for (i = 0; i < HASHSIZE; i++) {
        for (c = table[i]; c != 0; c = c->next) {
            if (c->count > 1)
                report_class(c);
        }
    }
}

/* ------------------------------------------------------------------ */
/* Second phase: find "addagram" chains -- words whose signature grows */
/* by one letter each step (anagram's companion analysis).             */
/* ------------------------------------------------------------------ */

struct chain_link {
    struct chain_link *prev;
    struct anaclass *cls;
    int depth;
};

static struct chain_link *best_chain;
static int best_depth;

static int extends(struct anaclass *a, struct anaclass *b)
{
    /* True if b's signature is a's plus exactly one letter.  Compare
     * local copies by index. */
    char small[SIGMAX];
    char big[SIGMAX];
    int i;
    int j;
    int extra;

    strcpy(small, a->sig);
    strcpy(big, b->sig);
    i = 0;
    j = 0;
    extra = 0;
    while (small[i] != '\0' && big[j] != '\0') {
        if (small[i] == big[j]) {
            i++;
            j++;
        } else {
            extra++;
            if (extra > 1)
                return 0;
            j++;
        }
    }
    while (big[j] != '\0') {
        extra++;
        j++;
    }
    return small[i] == '\0' && extra == 1;
}

static struct anaclass *class_iter(int *bucket, struct anaclass *cur)
{
    if (cur != 0 && cur->next != 0)
        return cur->next;
    for ((*bucket)++; *bucket < HASHSIZE; (*bucket)++) {
        if (table[*bucket] != 0)
            return table[*bucket];
    }
    return 0;
}

static void grow_chain(struct chain_link *tip)
{
    int bucket;
    struct anaclass *c;
    struct chain_link link;

    if (tip->depth > best_depth) {
        best_depth = tip->depth;
        best_chain = (struct chain_link *)malloc(sizeof(struct chain_link));
        best_chain->prev = tip->prev;
        best_chain->cls = tip->cls;
        best_chain->depth = tip->depth;
    }
    bucket = -1;
    c = class_iter(&bucket, 0);
    while (c != 0) {
        if (extends(tip->cls, c)) {
            link.prev = tip;
            link.cls = c;
            link.depth = tip->depth + 1;
            grow_chain(&link);
        }
        c = class_iter(&bucket, c);
    }
}

static void find_chains(void)
{
    int bucket;
    struct anaclass *c;
    struct chain_link root;

    bucket = -1;
    c = class_iter(&bucket, 0);
    while (c != 0) {
        if ((int)strlen(c->sig) <= 3) {
            root.prev = 0;
            root.cls = c;
            root.depth = 1;
            grow_chain(&root);
        }
        c = class_iter(&bucket, c);
    }
}

static void report_chain(void)
{
    struct chain_link *l;

    if (best_chain == 0)
        return;
    printf("longest addagram chain (depth %d):", best_depth);
    for (l = best_chain; l != 0; l = l->prev)
        printf(" %s", l->cls->sig);
    printf("\n");
}

static void free_all(void)
{
    int i;
    struct anaclass *c;
    struct anaclass *cnext;
    struct word *w;
    struct word *wnext;

    for (i = 0; i < HASHSIZE; i++) {
        for (c = table[i]; c != 0; c = cnext) {
            cnext = c->next;
            for (w = c->words; w != 0; w = wnext) {
                wnext = w->next_in_class;
                free(w->text);
                free(w);
            }
            free(c);
        }
        table[i] = 0;
    }
}

int main(void)
{
    char line[128];
    FILE *dict;

    dict = fopen("words.txt", "r");
    if (dict == 0)
        return 1;
    while (fgets(line, 128, dict) != 0) {
        char *nl;
        nl = strchr(line, '\n');
        if (nl != 0)
            *nl = '\0';
        add_word(line);
    }
    fclose(dict);
    report_all();
    if (best_class != 0)
        printf("largest class %s has %d words (of %d total)\n",
               best_class->sig, best_count, total_words);
    find_chains();
    report_chain();
    free_all();
    return 0;
}
