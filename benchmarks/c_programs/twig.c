/* twig - tree-pattern matcher over variant nodes.
 *
 * Stand-in for "twig" (the paper's worst case for the Common Initial
 * Sequence algorithm in Figure 4).  The idiom: several tree-node
 * variants share *part* of an initial sequence and then diverge, and the
 * matcher walks trees through the shortest common view, so accesses
 * regularly fall just beyond the guaranteed prefix.
 */

#define OP_CONST 1
#define OP_REG 2
#define OP_PLUS 3
#define OP_MUL 4
#define OP_MEM 5

/* Common view: every node starts with op and cost. */
struct tree {
    int op;
    int cost;
};

/* Leaf variants diverge right after the common prefix. */
struct leaf_const {
    int op;
    int cost;
    long value;
    struct leaf_const *next_const;
};

struct leaf_reg {
    int op;
    int cost;
    int regno;
    char *regname;
};

/* Interior nodes: one or two kids. */
struct unary {
    int op;
    int cost;
    struct tree *kid;
};

struct binary {
    int op;
    int cost;
    struct tree *left;
    struct tree *right;
};

struct match {
    struct match *next;
    struct tree *where;
    int rule;
    int cost;
};

static struct leaf_const *const_pool;
static struct match *matches;
static int nodes_made;
static int rules_fired;

static struct tree *mk_const(long v)
{
    struct leaf_const *n;

    n = (struct leaf_const *)malloc(sizeof(struct leaf_const));
    n->op = OP_CONST;
    n->cost = 0;
    n->value = v;
    n->next_const = const_pool;
    const_pool = n;
    nodes_made++;
    return (struct tree *)n;
}

static struct tree *mk_reg(int rno, char *name)
{
    struct leaf_reg *n;

    n = (struct leaf_reg *)malloc(sizeof(struct leaf_reg));
    n->op = OP_REG;
    n->cost = 0;
    n->regno = rno;
    n->regname = name;
    nodes_made++;
    return (struct tree *)n;
}

static struct tree *mk_unary(int op, struct tree *kid)
{
    struct unary *n;

    n = (struct unary *)malloc(sizeof(struct unary));
    n->op = op;
    n->cost = 0;
    n->kid = kid;
    nodes_made++;
    return (struct tree *)n;
}

static struct tree *mk_binary(int op, struct tree *l, struct tree *r)
{
    struct binary *n;

    n = (struct binary *)malloc(sizeof(struct binary));
    n->op = op;
    n->cost = 0;
    n->left = l;
    n->right = r;
    nodes_made++;
    return (struct tree *)n;
}

static void record_match(struct tree *t, int rule, int cost)
{
    struct match *m;

    m = (struct match *)malloc(sizeof(struct match));
    m->where = t;
    m->rule = rule;
    m->cost = cost;
    m->next = matches;
    matches = m;
    rules_fired++;
}

static int is_small_const(struct tree *t)
{
    struct leaf_const *c;

    if (t->op != OP_CONST)
        return 0;
    c = (struct leaf_const *)t;
    return c->value >= -128 && c->value < 128;
}

/* Rule 1: MUL(x, CONST 2^k)  => shift               cost 1
 * Rule 2: PLUS(REG, CONST8)  => add-immediate       cost 1
 * Rule 3: MEM(PLUS(REG, C))  => indexed load        cost 2
 * Rule 4: anything           => general             cost 4
 */
static int match_node(struct tree *t)
{
    int best;

    best = 4;
    record_match(t, 4, 4);

    if (t->op == OP_MUL) {
        struct binary *b;
        b = (struct binary *)t;
        if (is_small_const(b->right)) {
            struct leaf_const *c;
            c = (struct leaf_const *)b->right;
            if ((c->value & (c->value - 1)) == 0) {
                record_match(t, 1, 1);
                best = 1;
            }
        }
    }
    if (t->op == OP_PLUS) {
        struct binary *b;
        b = (struct binary *)t;
        if (b->left->op == OP_REG && is_small_const(b->right)) {
            record_match(t, 2, 1);
            best = best < 1 ? best : 1;
        }
    }
    if (t->op == OP_MEM) {
        struct unary *u;
        u = (struct unary *)t;
        if (u->kid->op == OP_PLUS) {
            record_match(t, 3, 2);
            best = best < 2 ? best : 2;
        }
    }
    t->cost = best;
    return best;
}

static int label_tree(struct tree *t)
{
    int total;

    total = 0;
    switch (t->op) {
    case OP_PLUS:
    case OP_MUL: {
        struct binary *b;
        b = (struct binary *)t;
        total += label_tree(b->left);
        total += label_tree(b->right);
        break;
    }
    case OP_MEM: {
        struct unary *u;
        u = (struct unary *)t;
        total += label_tree(u->kid);
        break;
    }
    }
    total += match_node(t);
    return total;
}

static void dump_matches(void)
{
    struct match *m;

    for (m = matches; m != 0; m = m->next)
        printf("node(op=%d) rule %d cost %d\n",
               m->where->op, m->rule, m->cost);
}

/* ------------------------------------------------------------------ */
/* Rewrite pass: constant folding over the labeled tree, producing new */
/* leaf nodes in place of foldable interior nodes -- the second phase  */
/* of a twig-style code generator.                                     */
/* ------------------------------------------------------------------ */

static int folds_done;

static long const_value_of(struct tree *t, int *known)
{
    if (t->op == OP_CONST) {
        *known = 1;
        return ((struct leaf_const *)t)->value;
    }
    *known = 0;
    return 0;
}

static struct tree *fold(struct tree *t)
{
    switch (t->op) {
    case OP_PLUS:
    case OP_MUL: {
        struct binary *b;
        int lk;
        int rk;
        long lv;
        long rv;
        b = (struct binary *)t;
        b->left = fold(b->left);
        b->right = fold(b->right);
        lv = const_value_of(b->left, &lk);
        rv = const_value_of(b->right, &rk);
        if (lk && rk) {
            folds_done++;
            return mk_const(t->op == OP_PLUS ? lv + rv : lv * rv);
        }
        return t;
    }
    case OP_MEM: {
        struct unary *u;
        u = (struct unary *)t;
        u->kid = fold(u->kid);
        return t;
    }
    }
    return t;
}

/* Emit a linearized instruction selection from the best matches: a
 * post-order walk choosing each node's recorded best rule. */

struct emit_rec {
    struct emit_rec *next;
    int rule;
    int node_op;
};

static struct emit_rec *emitted;
static int emit_count;

static void emit_insn(int rule, int op)
{
    struct emit_rec *e;

    e = (struct emit_rec *)malloc(sizeof(struct emit_rec));
    e->rule = rule;
    e->node_op = op;
    e->next = emitted;
    emitted = e;
    emit_count++;
}

static int best_rule_for(struct tree *t)
{
    struct match *m;
    int best_rule;
    int best_cost;

    best_rule = 4;
    best_cost = 1 << 30;
    for (m = matches; m != 0; m = m->next) {
        if (m->where == t && m->cost < best_cost) {
            best_cost = m->cost;
            best_rule = m->rule;
        }
    }
    return best_rule;
}

static void emit_tree(struct tree *t)
{
    switch (t->op) {
    case OP_PLUS:
    case OP_MUL: {
        struct binary *b;
        b = (struct binary *)t;
        emit_tree(b->left);
        emit_tree(b->right);
        break;
    }
    case OP_MEM:
        emit_tree(((struct unary *)t)->kid);
        break;
    }
    emit_insn(best_rule_for(t), t->op);
}

int main(void)
{
    struct tree *t;
    struct tree *t2;
    int cost;

    /* MEM(PLUS(REG r1, CONST 8)) * CONST 4 */
    t = mk_binary(OP_MUL,
                  mk_unary(OP_MEM,
                           mk_binary(OP_PLUS, mk_reg(1, "r1"), mk_const(8))),
                  mk_const(4));
    cost = label_tree(t);
    dump_matches();
    printf("%d nodes, %d matches, total cost %d\n",
           nodes_made, rules_fired, cost);

    /* Second phase: fold PLUS(CONST 2, CONST 3) * REG, then emit. */
    t2 = mk_binary(OP_MUL,
                   mk_binary(OP_PLUS, mk_const(2), mk_const(3)),
                   mk_reg(2, "r2"));
    t2 = fold(t2);
    label_tree(t2);
    emit_tree(t2);
    emit_tree(fold(t));
    printf("%d folds, %d instructions emitted\n", folds_done, emit_count);
    {
        struct emit_rec *e;
        for (e = emitted; e != 0; e = e->next)
            printf("  rule %d (op=%d)\n", e->rule, e->node_op);
    }
    return 0;
}
