/* gzip - huffman-coding core with an arena of mixed records.
 *
 * Stand-in for SPEC "gzip"/GNU gzip.  Casting idioms: tree nodes and
 * code-table entries are both carved from one byte arena (cast from
 * char*), and the frequency-sorted heap holds generic pointers cast back
 * to node views.
 */

#define NSYMS 32
#define ARENABYTES 8192
#define MAXBITS 16

struct huff_node {
    long freq;
    int symbol;            /* -1 for internal nodes */
    struct huff_node *left;
    struct huff_node *right;
};

struct code_entry {
    int symbol;
    int nbits;
    unsigned int bits;
};

static char arena[ARENABYTES];
static int arena_used;
static long freqs[NSYMS];
static struct huff_node *heap[NSYMS * 2];
static int heap_len;
static struct code_entry *codes[NSYMS];
static long encoded_bits;

static char *carve(unsigned long n)
{
    char *p;

    while ((arena_used % 8) != 0)
        arena_used++;
    if (arena_used + (int)n > ARENABYTES)
        return 0;
    p = &arena[arena_used];
    arena_used += (int)n;
    return p;
}

static struct huff_node *new_node(long freq, int symbol)
{
    struct huff_node *n;

    n = (struct huff_node *)carve(sizeof(struct huff_node));
    if (n == 0)
        return 0;
    n->freq = freq;
    n->symbol = symbol;
    n->left = 0;
    n->right = 0;
    return n;
}

static void heap_push(struct huff_node *n)
{
    int i;
    int parent;

    heap[heap_len] = n;
    i = heap_len;
    heap_len++;
    while (i > 0) {
        parent = (i - 1) / 2;
        if (heap[parent]->freq <= heap[i]->freq)
            break;
        n = heap[parent];
        heap[parent] = heap[i];
        heap[i] = n;
        i = parent;
    }
}

static struct huff_node *heap_pop(void)
{
    struct huff_node *top;
    struct huff_node *tmp;
    int i;
    int kid;

    if (heap_len == 0)
        return 0;
    top = heap[0];
    heap_len--;
    heap[0] = heap[heap_len];
    i = 0;
    for (;;) {
        kid = i * 2 + 1;
        if (kid >= heap_len)
            break;
        if (kid + 1 < heap_len && heap[kid + 1]->freq < heap[kid]->freq)
            kid++;
        if (heap[i]->freq <= heap[kid]->freq)
            break;
        tmp = heap[i];
        heap[i] = heap[kid];
        heap[kid] = tmp;
        i = kid;
    }
    return top;
}

static struct huff_node *build_tree(void)
{
    int s;
    struct huff_node *a;
    struct huff_node *b;
    struct huff_node *parent;

    for (s = 0; s < NSYMS; s++) {
        if (freqs[s] > 0)
            heap_push(new_node(freqs[s], s));
    }
    while (heap_len > 1) {
        a = heap_pop();
        b = heap_pop();
        parent = new_node(a->freq + b->freq, -1);
        parent->left = a;
        parent->right = b;
        heap_push(parent);
    }
    return heap_pop();
}

static void assign_codes(struct huff_node *n, unsigned int bits, int depth)
{
    struct code_entry *e;

    if (n == 0)
        return;
    if (n->symbol >= 0) {
        e = (struct code_entry *)carve(sizeof(struct code_entry));
        if (e == 0)
            return;
        e->symbol = n->symbol;
        e->nbits = depth > 0 ? depth : 1;
        e->bits = bits;
        codes[n->symbol] = e;
        return;
    }
    if (depth >= MAXBITS)
        return;
    assign_codes(n->left, bits << 1, depth + 1);
    assign_codes(n->right, (bits << 1) | 1, depth + 1);
}

static void count_input(unsigned char *data, int len)
{
    int i;

    for (i = 0; i < len; i++)
        freqs[data[i] % NSYMS]++;
}

static long encode_length(unsigned char *data, int len)
{
    int i;
    struct code_entry *e;
    long bits;

    bits = 0;
    for (i = 0; i < len; i++) {
        e = codes[data[i] % NSYMS];
        if (e != 0)
            bits += e->nbits;
    }
    return bits;
}

static unsigned char sample[512];

static void make_sample(void)
{
    int i;

    for (i = 0; i < 512; i++)
        sample[i] = (unsigned char)((i * i) % 17 + (i % 5));
}

/* ------------------------------------------------------------------ */
/* Decoder: pack the codes into a bit stream, then walk the tree bit   */
/* by bit to recover the symbols -- the inflate half.                  */
/* ------------------------------------------------------------------ */

struct bitstream {
    unsigned char *bytes;
    long capacity_bits;
    long write_pos;
    long read_pos;
};

static unsigned char stream_storage[4096];
static struct bitstream stream;

static void stream_init(struct bitstream *bs)
{
    bs->bytes = stream_storage;
    bs->capacity_bits = (long)sizeof(stream_storage) * 8;
    bs->write_pos = 0;
    bs->read_pos = 0;
}

static void put_bit(struct bitstream *bs, int bit)
{
    long byte;
    int off;

    if (bs->write_pos >= bs->capacity_bits)
        return;
    byte = bs->write_pos / 8;
    off = (int)(bs->write_pos % 8);
    if (bit)
        bs->bytes[byte] |= (unsigned char)(1 << off);
    else
        bs->bytes[byte] &= (unsigned char)~(1 << off);
    bs->write_pos++;
}

static int get_bit(struct bitstream *bs)
{
    long byte;
    int off;

    if (bs->read_pos >= bs->write_pos)
        return -1;
    byte = bs->read_pos / 8;
    off = (int)(bs->read_pos % 8);
    bs->read_pos++;
    return (bs->bytes[byte] >> off) & 1;
}

static void encode_stream(unsigned char *data, int len)
{
    int i;
    int b;
    struct code_entry *e;

    stream_init(&stream);
    for (i = 0; i < len; i++) {
        e = codes[data[i] % NSYMS];
        if (e == 0)
            continue;
        for (b = e->nbits - 1; b >= 0; b--)
            put_bit(&stream, (e->bits >> b) & 1);
    }
}

static int decode_stream(struct huff_node *root, unsigned char *out, int max)
{
    struct huff_node *cur;
    int bit;
    int n;

    n = 0;
    cur = root;
    for (;;) {
        bit = get_bit(&stream);
        if (bit < 0)
            break;
        cur = bit ? cur->right : cur->left;
        if (cur == 0)
            return -1;  /* corrupt stream */
        if (cur->symbol >= 0) {
            if (n < max)
                out[n] = (unsigned char)cur->symbol;
            n++;
            cur = root;
        }
    }
    return n;
}

static unsigned char decoded[512];

static int verify_decode(struct huff_node *root)
{
    int n;
    int i;

    encode_stream(sample, 512);
    n = decode_stream(root, decoded, 512);
    if (n != 512)
        return 0;
    for (i = 0; i < 512; i++) {
        if (decoded[i] != sample[i] % NSYMS)
            return 0;
    }
    return 1;
}

int main(void)
{
    struct huff_node *root;
    int s;

    make_sample();
    count_input(sample, 512);
    root = build_tree();
    assign_codes(root, 0, 0);
    encoded_bits = encode_length(sample, 512);

    for (s = 0; s < NSYMS; s++) {
        if (codes[s] != 0)
            printf("sym %2d freq %4ld -> %d bits\n",
                   s, freqs[s], codes[s]->nbits);
    }
    printf("512 bytes -> %ld bits (arena %d)\n", encoded_bits, arena_used);
    printf("roundtrip %s (stream %ld bits)\n",
           verify_decode(root) ? "verified" : "FAILED", stream.write_pos);
    return 0;
}
