/* simulator - instruction-set simulator for the toy ISA.
 *
 * Stand-in for the Landi benchmark "simulator".  Casting idioms: raw
 * instruction words decoded by casting an unsigned int's address to a
 * bit-field view struct, and a memory array aliased as both word and
 * byte views.
 */

#define MEMWORDS 256
#define NREGS 8

#define OP_LOAD 1
#define OP_STORE 2
#define OP_ADD 3
#define OP_JUMP 4
#define OP_HALT 5

struct decoded {
    unsigned int opcode : 8;
    unsigned int reg : 8;
    unsigned int imm : 16;
};

struct machine {
    unsigned int mem[MEMWORDS];
    long regs[NREGS];
    int pc;
    int running;
    long cycles;
};

struct trace_rec {
    struct trace_rec *next;
    int pc;
    int opcode;
    long reg_after;
};

static struct machine cpu;
static struct trace_rec *trace_head;
static int trace_len;

static struct decoded *decode(unsigned int *word)
{
    return (struct decoded *)word;
}

static unsigned char *byte_view(struct machine *m, int addr)
{
    unsigned char *base;

    base = (unsigned char *)m->mem;
    return &base[addr];
}

static void record_trace(struct machine *m, int opcode, int reg)
{
    struct trace_rec *t;

    t = (struct trace_rec *)malloc(sizeof(struct trace_rec));
    t->pc = m->pc;
    t->opcode = opcode;
    t->reg_after = m->regs[reg % NREGS];
    t->next = trace_head;
    trace_head = t;
    trace_len++;
}

static void step(struct machine *m)
{
    struct decoded *d;
    unsigned int word;
    int r;

    word = m->mem[m->pc % MEMWORDS];
    d = decode(&m->mem[m->pc % MEMWORDS]);
    r = (int)d->reg % NREGS;

    switch ((int)d->opcode) {
    case OP_LOAD:
        m->regs[r] = (long)m->mem[d->imm % MEMWORDS];
        break;
    case OP_STORE:
        m->mem[d->imm % MEMWORDS] = (unsigned int)m->regs[r];
        break;
    case OP_ADD:
        m->regs[r] = m->regs[r] + (long)d->imm;
        break;
    case OP_JUMP:
        m->pc = (int)d->imm - 1;
        break;
    case OP_HALT:
        m->running = 0;
        break;
    default:
        m->running = 0;
        break;
    }
    record_trace(m, (int)d->opcode, r);
    m->pc++;
    m->cycles++;
    if (m->cycles > 1000)
        m->running = 0;
    (void)word;
}

static unsigned int encode(int opcode, int reg, int imm)
{
    struct decoded d;
    unsigned int *raw;

    d.opcode = (unsigned int)opcode;
    d.reg = (unsigned int)reg;
    d.imm = (unsigned int)imm;
    raw = (unsigned int *)&d;
    return *raw;
}

static void load_program(struct machine *m)
{
    int a;

    a = 0;
    m->mem[a++] = encode(OP_ADD, 1, 10);   /* r1 += 10 */
    m->mem[a++] = encode(OP_ADD, 2, 32);   /* r2 += 32 */
    m->mem[a++] = encode(OP_STORE, 1, 100);
    m->mem[a++] = encode(OP_LOAD, 3, 100);
    m->mem[a++] = encode(OP_ADD, 3, 1);
    m->mem[a++] = encode(OP_HALT, 0, 0);
}

static long checksum(struct machine *m)
{
    long sum;
    int i;
    unsigned char *bytes;

    sum = 0;
    for (i = 0; i < NREGS; i++)
        sum += m->regs[i];
    bytes = byte_view(m, 0);
    for (i = 0; i < 16; i++)
        sum += (long)bytes[i];
    return sum;
}

static void dump_trace(void)
{
    struct trace_rec *t;
    int shown;

    shown = 0;
    for (t = trace_head; t != 0 && shown < 8; t = t->next) {
        printf("pc=%d op=%d reg_after=%ld\n", t->pc, t->opcode, t->reg_after);
        shown++;
    }
}

/* ------------------------------------------------------------------ */
/* Disassembler: mnemonic tables and operand formatting, reading the   */
/* same words back through the bit-field view.                         */
/* ------------------------------------------------------------------ */

struct mnemonic {
    int opcode;
    char *name;
    int has_reg;
    int has_imm;
};

static struct mnemonic mnemonics[] = {
    { OP_LOAD, "load", 1, 1 },
    { OP_STORE, "store", 1, 1 },
    { OP_ADD, "add", 1, 1 },
    { OP_JUMP, "jump", 0, 1 },
    { OP_HALT, "halt", 0, 0 },
    { 0, 0, 0, 0 },
};

static struct mnemonic *mnemonic_for(int opcode)
{
    struct mnemonic *m;

    for (m = mnemonics; m->name != 0; m++) {
        if (m->opcode == opcode)
            return m;
    }
    return 0;
}

static int disassemble_one(struct machine *m, int addr, char *buf, int max)
{
    struct decoded *d;
    struct mnemonic *mn;
    int n;

    d = decode(&m->mem[addr % MEMWORDS]);
    mn = mnemonic_for((int)d->opcode);
    if (mn == 0) {
        n = snprintf(buf, (size_t)max, "%04d: .word %u", addr,
                     m->mem[addr % MEMWORDS]);
        return n;
    }
    if (mn->has_reg && mn->has_imm)
        n = snprintf(buf, (size_t)max, "%04d: %-6s r%u, %u", addr,
                     mn->name, d->reg, d->imm);
    else if (mn->has_imm)
        n = snprintf(buf, (size_t)max, "%04d: %-6s %u", addr,
                     mn->name, d->imm);
    else
        n = snprintf(buf, (size_t)max, "%04d: %-6s", addr, mn->name);
    return n;
}

static void disassemble(struct machine *m, int from, int count)
{
    char line[64];
    int a;

    for (a = from; a < from + count; a++) {
        disassemble_one(m, a, line, 64);
        puts(line);
    }
}

/* Breakpoint list: simulation watchpoints, a linked client of the
 * machine state. */

struct breakpoint {
    struct breakpoint *next;
    int addr;
    long hit_count;
};

static struct breakpoint *breakpoints;

static void add_breakpoint(int addr)
{
    struct breakpoint *bp;

    bp = (struct breakpoint *)malloc(sizeof(struct breakpoint));
    bp->addr = addr;
    bp->hit_count = 0;
    bp->next = breakpoints;
    breakpoints = bp;
}

static struct breakpoint *check_breakpoint(struct machine *m)
{
    struct breakpoint *bp;

    for (bp = breakpoints; bp != 0; bp = bp->next) {
        if (bp->addr == m->pc) {
            bp->hit_count++;
            return bp;
        }
    }
    return 0;
}

int main(void)
{
    int i;

    for (i = 0; i < NREGS; i++)
        cpu.regs[i] = 0;
    cpu.pc = 0;
    cpu.running = 1;
    cpu.cycles = 0;

    load_program(&cpu);
    printf("disassembly:\n");
    disassemble(&cpu, 0, 6);

    add_breakpoint(3);
    while (cpu.running) {
        struct breakpoint *bp;
        bp = check_breakpoint(&cpu);
        if (bp != 0)
            printf("breakpoint at %d (hit %ld)\n", bp->addr, bp->hit_count);
        step(&cpu);
    }

    dump_trace();
    printf("halted after %ld cycles, checksum %ld, trace %d\n",
           cpu.cycles, checksum(&cpu), trace_len);
    return 0;
}
