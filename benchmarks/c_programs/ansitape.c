/* ansitape - ANSI-labeled tape reader.
 *
 * Stand-in for the Landi benchmark "ansitape".  The defining idiom:
 * fixed-size tape blocks arrive as raw byte buffers and are
 * reinterpreted as label records by casting char* to record pointers --
 * the CIS-hostile direction of casting (char arrays share no common
 * initial sequence with the records).
 */

#define BLOCK 80
#define MAXFILES 16

struct vol_label {
    char id[4];       /* "VOL1" */
    char serial[6];
    char owner[14];
    char reserved[56];
};

struct hdr_label {
    char id[4];       /* "HDR1" */
    char filename[17];
    char fileset[6];
    char section[4];
    char sequence[4];
    char rest[45];
};

struct eof_label {
    char id[4];       /* "EOF1" */
    char filename[17];
    char blockcount[6];
    char rest[53];
};

struct fileinfo {
    char name[18];
    long blocks;
    struct fileinfo *next;
};

static char tape_block[BLOCK];
static struct fileinfo *files;
static int nfiles;
static char current_volume[7];

static void read_block(FILE *tape, char *buf)
{
    int n;

    n = (int)fread(buf, 1, BLOCK, tape);
    while (n < BLOCK)
        buf[n++] = ' ';
}

static int label_is(char *buf, char *tag)
{
    return strncmp(buf, tag, 4) == 0;
}

static void copy_field(char *dst, char *src, int n)
{
    int i;

    for (i = 0; i < n; i++)
        dst[i] = src[i];
    dst[n] = '\0';
    while (n > 0 && dst[n - 1] == ' ') {
        n--;
        dst[n] = '\0';
    }
}

static void handle_volume(char *buf)
{
    struct vol_label *v;

    v = (struct vol_label *)buf;
    copy_field(current_volume, v->serial, 6);
    printf("volume %s\n", current_volume);
}

static struct fileinfo *handle_header(char *buf)
{
    struct hdr_label *h;
    struct fileinfo *f;

    h = (struct hdr_label *)buf;
    f = (struct fileinfo *)malloc(sizeof(struct fileinfo));
    copy_field(f->name, h->filename, 17);
    f->blocks = 0;
    f->next = files;
    files = f;
    nfiles++;
    return f;
}

static void handle_eof(char *buf, struct fileinfo *f)
{
    struct eof_label *e;
    char count[7];

    e = (struct eof_label *)buf;
    if (f == 0)
        return;
    copy_field(count, e->blockcount, 6);
    f->blocks = atol(count);
}

static void list_files(void)
{
    struct fileinfo *f;

    printf("%d files on volume %s:\n", nfiles, current_volume);
    for (f = files; f != 0; f = f->next)
        printf("  %-18s %ld blocks\n", f->name, f->blocks);
}

static int process_tape(FILE *tape)
{
    struct fileinfo *current;
    int blocks;

    current = 0;
    blocks = 0;
    for (;;) {
        read_block(tape, tape_block);
        if (label_is(tape_block, "VOL1")) {
            handle_volume(tape_block);
        } else if (label_is(tape_block, "HDR1")) {
            current = handle_header(tape_block);
        } else if (label_is(tape_block, "EOF1")) {
            handle_eof(tape_block, current);
            current = 0;
        } else if (label_is(tape_block, "END ")) {
            break;
        } else {
            blocks++;
            if (blocks > 10000)
                break;
        }
        if (feof(tape))
            break;
    }
    return blocks;
}

/* ------------------------------------------------------------------ */
/* Writing path: build label records in the block buffer through the   */
/* typed views and emit them -- the reverse casting direction.         */
/* ------------------------------------------------------------------ */

static int blocks_written;

static void pad_field(char *dst, char *src, int n)
{
    int i;
    int len;

    len = (int)strlen(src);
    for (i = 0; i < n; i++)
        dst[i] = i < len ? src[i] : ' ';
}

static void write_block(FILE *tape, char *buf)
{
    fwrite(buf, 1, BLOCK, tape);
    blocks_written++;
}

static void emit_volume(FILE *tape, char *serial, char *owner)
{
    struct vol_label *v;
    int i;

    for (i = 0; i < BLOCK; i++)
        tape_block[i] = ' ';
    v = (struct vol_label *)tape_block;
    pad_field(v->id, "VOL1", 4);
    pad_field(v->serial, serial, 6);
    pad_field(v->owner, owner, 14);
    write_block(tape, tape_block);
}

static void emit_header(FILE *tape, char *name, int section)
{
    struct hdr_label *h;
    char secbuf[8];
    int i;

    for (i = 0; i < BLOCK; i++)
        tape_block[i] = ' ';
    h = (struct hdr_label *)tape_block;
    pad_field(h->id, "HDR1", 4);
    pad_field(h->filename, name, 17);
    pad_field(h->fileset, "SET001", 6);
    snprintf(secbuf, 8, "%04d", section);
    pad_field(h->section, secbuf, 4);
    pad_field(h->sequence, "0001", 4);
    write_block(tape, tape_block);
}

static void emit_eof(FILE *tape, char *name, long blocks)
{
    struct eof_label *e;
    char countbuf[8];
    int i;

    for (i = 0; i < BLOCK; i++)
        tape_block[i] = ' ';
    e = (struct eof_label *)tape_block;
    pad_field(e->id, "EOF1", 4);
    pad_field(e->filename, name, 17);
    snprintf(countbuf, 8, "%06ld", blocks);
    pad_field(e->blockcount, countbuf, 6);
    write_block(tape, tape_block);
}

static void emit_data(FILE *tape, char *payload, long nblocks)
{
    long b;
    int i;
    int len;

    len = (int)strlen(payload);
    for (b = 0; b < nblocks; b++) {
        for (i = 0; i < BLOCK; i++)
            tape_block[i] = payload[(b * BLOCK + i) % (len > 0 ? len : 1)];
        write_block(tape, tape_block);
    }
}

static void write_archive(FILE *tape)
{
    emit_volume(tape, "VOL001", "repro");
    emit_header(tape, "README", 1);
    emit_data(tape, "hello tape world ", 3);
    emit_eof(tape, "README", 3);
    emit_header(tape, "DATA", 1);
    emit_data(tape, "payload ", 5);
    emit_eof(tape, "DATA", 5);
}

int main(void)
{
    FILE *tape;
    int data_blocks;

    tape = fopen("tape.dat", "w");
    if (tape != 0) {
        write_archive(tape);
        fclose(tape);
        printf("wrote %d blocks\n", blocks_written);
    }

    tape = fopen("tape.dat", "r");
    if (tape == 0)
        return 1;
    data_blocks = process_tape(tape);
    fclose(tape);
    list_files();
    printf("%d data blocks\n", data_blocks);
    return 0;
}
