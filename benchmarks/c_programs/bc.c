/* bc - arbitrary-precision calculator over a tagged AST.
 *
 * Stand-in for GNU "bc", the paper's worst case for the Collapse Always
 * algorithm (Figure 4 shows its points-to sets more than 10x larger
 * there).  Two idioms are responsible:
 *
 *  - every AST node shares a small header (tag + source position) and is
 *    downcast to its concrete variant, and
 *  - like real bc, values are arbitrary-precision numbers represented as
 *    multi-field structs embedded in the variants, so a collapsed
 *    analysis expands each node fact across many fields while a
 *    field-sensitive one keeps each variant's pointers separate.
 */

#define TAG_NUM 1
#define TAG_VAR 2
#define TAG_BINOP 3
#define TAG_UNOP 4
#define TAG_CALL 5
#define TAG_ASSIGN 6

#define NDIGITS 24

/* bc_num-style arbitrary-precision value. */
struct number {
    char *digits;
    int len;
    int scale;
    int sign;
    int refs;
};

struct node {
    int tag;
    int line;
};

struct num_node {
    struct node hdr;
    struct number value;
};

struct var_node {
    struct node hdr;
    char *name;
    struct var_node *next_var;
    struct number value;
    int assignments;
};

struct binop_node {
    struct node hdr;
    int op;
    struct node *left;
    struct node *right;
    struct number cache;
    int cached;
};

struct unop_node {
    struct node hdr;
    int op;
    struct node *operand;
    struct number cache;
    int cached;
};

struct call_node {
    struct node hdr;
    char *fname;
    struct node *arg;
    struct number cache;
    int cached;
};

struct assign_node {
    struct node hdr;
    struct var_node *target;
    struct node *value;
};

/* Interpreter context, like bc's global state: scale/base settings,
 * output buffering, error accounting, the variable list.  Functions
 * receive it by pointer and read single fields -- precisely the access
 * pattern a collapsed analysis smears across the whole record. */
struct interp {
    struct var_node *vars;
    struct number last;
    char *prompt;
    char *outbuf;
    int outlen;
    int scale;
    int ibase;
    int obase;
    int errors;
    int warnings;
    long reads;
    long writes;
    int line_no;
    int interactive;
};

static struct interp g_interp;
static struct var_node *var_list;
static int nodes_built;
static long eval_count;

static void init_hdr(struct node *n, int tag)
{
    n->tag = tag;
    n->line = nodes_built;
    nodes_built++;
}

static void ctx_error(struct interp *ctx, char *msg)
{
    ctx->errors++;
    if (ctx->interactive)
        printf("line %d: %s\n", ctx->line_no, msg);
}

static void ctx_emit(struct interp *ctx, char *text)
{
    char *p;

    for (p = text; *p != '\0'; p++) {
        if (ctx->outlen < 255) {
            ctx->outbuf[ctx->outlen] = *p;
            ctx->outlen++;
        }
    }
    ctx->writes++;
}

static int ctx_scale(struct interp *ctx)
{
    return ctx->scale;
}

static int ctx_base(struct interp *ctx, int which)
{
    ctx->reads++;
    return which ? ctx->obase : ctx->ibase;
}

static void ctx_remember(struct interp *ctx, struct number *n)
{
    ctx->last.digits = n->digits;
    ctx->last.len = n->len;
    ctx->last.scale = n->scale;
    ctx->last.sign = n->sign;
    ctx->last.refs = 1;
}

static void num_from_long(struct number *out, long v)
{
    char *d;
    int i;
    long x;

    d = (char *)malloc(NDIGITS);
    for (i = 0; i < NDIGITS; i++)
        d[i] = 0;
    out->sign = v < 0 ? -1 : 1;
    x = v < 0 ? -v : v;
    i = 0;
    while (x > 0 && i < NDIGITS) {
        d[i] = (char)(x % 10);
        x = x / 10;
        i++;
    }
    out->digits = d;
    out->len = i > 0 ? i : 1;
    out->scale = 0;
    out->refs = 1;
}

static long num_to_long(struct number *n)
{
    long v;
    int i;

    v = 0;
    for (i = n->len - 1; i >= 0; i--)
        v = v * 10 + n->digits[i];
    return n->sign < 0 ? -v : v;
}

static void num_copy(struct number *dst, struct number *src)
{
    dst->digits = src->digits;
    dst->len = src->len;
    dst->scale = src->scale;
    dst->sign = src->sign;
    src->refs++;
    dst->refs = 1;
}

static void num_add(struct number *out, struct number *a, struct number *b)
{
    num_from_long(out, num_to_long(a) + num_to_long(b));
}

static void num_sub(struct number *out, struct number *a, struct number *b)
{
    num_from_long(out, num_to_long(a) - num_to_long(b));
}

static void num_mul(struct number *out, struct number *a, struct number *b)
{
    num_from_long(out, num_to_long(a) * num_to_long(b));
}

static void num_div(struct number *out, struct number *a, struct number *b)
{
    long d;

    d = num_to_long(b);
    num_from_long(out, d != 0 ? num_to_long(a) / d : 0);
}

static struct node *mk_num(long v)
{
    struct num_node *n;

    n = (struct num_node *)malloc(sizeof(struct num_node));
    init_hdr(&n->hdr, TAG_NUM);
    num_from_long(&n->value, v);
    return &n->hdr;
}

static struct var_node *lookup_var(char *name)
{
    struct var_node *v;

    for (v = var_list; v != 0; v = v->next_var) {
        if (strcmp(v->name, name) == 0)
            return v;
    }
    v = (struct var_node *)malloc(sizeof(struct var_node));
    init_hdr(&v->hdr, TAG_VAR);
    v->name = strdup(name);
    num_from_long(&v->value, 0);
    v->assignments = 0;
    v->next_var = var_list;
    var_list = v;
    return v;
}

static struct node *mk_var(char *name)
{
    struct var_node *v;

    v = lookup_var(name);
    return &v->hdr;
}

static struct node *mk_binop(int op, struct node *l, struct node *r)
{
    struct binop_node *n;

    n = (struct binop_node *)malloc(sizeof(struct binop_node));
    init_hdr(&n->hdr, TAG_BINOP);
    n->op = op;
    n->left = l;
    n->right = r;
    n->cached = 0;
    return &n->hdr;
}

static struct node *mk_unop(int op, struct node *operand)
{
    struct unop_node *n;

    n = (struct unop_node *)malloc(sizeof(struct unop_node));
    init_hdr(&n->hdr, TAG_UNOP);
    n->op = op;
    n->operand = operand;
    n->cached = 0;
    return &n->hdr;
}

static struct node *mk_call(char *fname, struct node *arg)
{
    struct call_node *n;

    n = (struct call_node *)malloc(sizeof(struct call_node));
    init_hdr(&n->hdr, TAG_CALL);
    n->fname = fname;
    n->arg = arg;
    n->cached = 0;
    return &n->hdr;
}

static struct node *mk_assign(char *name, struct node *value)
{
    struct assign_node *n;

    n = (struct assign_node *)malloc(sizeof(struct assign_node));
    init_hdr(&n->hdr, TAG_ASSIGN);
    n->target = lookup_var(name);
    n->value = value;
    return &n->hdr;
}

static void eval(struct node *n, struct number *out);

static void eval_binop(struct binop_node *b, struct number *out)
{
    struct number l;
    struct number r;

    if (b->cached) {
        num_copy(out, &b->cache);
        return;
    }
    eval(b->left, &l);
    eval(b->right, &r);
    switch (b->op) {
    case '+':
        num_add(out, &l, &r);
        break;
    case '-':
        num_sub(out, &l, &r);
        break;
    case '*':
        num_mul(out, &l, &r);
        break;
    case '/':
        num_div(out, &l, &r);
        break;
    default:
        num_from_long(out, 0);
        break;
    }
    num_copy(&b->cache, out);
    b->cached = 1;
}

static void eval_call(struct call_node *c, struct number *out)
{
    struct number a;
    long v;

    eval(c->arg, &a);
    v = num_to_long(&a);
    if (strcmp(c->fname, "sqrt") == 0) {
        long r;
        r = 0;
        while ((r + 1) * (r + 1) <= v)
            r++;
        num_from_long(out, r);
        return;
    }
    if (strcmp(c->fname, "abs") == 0) {
        num_from_long(out, v < 0 ? -v : v);
        return;
    }
    num_copy(out, &a);
}

static void eval(struct node *n, struct number *out)
{
    struct interp *ctx;

    ctx = &g_interp;
    ctx->line_no = n->line;
    if (ctx_base(ctx, 0) != 10)
        ctx_error(ctx, "only base 10 supported");
    eval_count++;
    switch (n->tag) {
    case TAG_NUM:
        num_copy(out, &((struct num_node *)n)->value);
        break;
    case TAG_VAR:
        num_copy(out, &((struct var_node *)n)->value);
        break;
    case TAG_BINOP:
        eval_binop((struct binop_node *)n, out);
        break;
    case TAG_UNOP: {
        struct unop_node *u;
        struct number inner;
        u = (struct unop_node *)n;
        eval(u->operand, &inner);
        if (u->op == '-')
            num_from_long(out, -num_to_long(&inner));
        else
            num_copy(out, &inner);
        break;
    }
    case TAG_CALL:
        eval_call((struct call_node *)n, out);
        break;
    case TAG_ASSIGN: {
        struct assign_node *a;
        a = (struct assign_node *)n;
        eval(a->value, out);
        num_copy(&a->target->value, out);
        a->target->assignments++;
        break;
    }
    default:
        ctx_error(ctx, "bad tag");
        num_from_long(out, 0);
        break;
    }
    if (out->scale > ctx_scale(ctx))
        out->scale = ctx_scale(ctx);
    ctx_remember(ctx, out);
}

static void print_number(struct interp *ctx, struct number *n)
{
    char buf[32];
    int i;
    int k;

    k = 0;
    if (n->sign < 0)
        buf[k++] = '-';
    for (i = n->len - 1; i >= 0 && k < 30; i--)
        buf[k++] = (char)('0' + n->digits[i]);
    buf[k++] = '\n';
    buf[k] = '\0';
    ctx_emit(ctx, buf);
}

static void free_tree(struct node *n)
{
    switch (n->tag) {
    case TAG_BINOP: {
        struct binop_node *b;
        b = (struct binop_node *)n;
        free_tree(b->left);
        free_tree(b->right);
        break;
    }
    case TAG_UNOP:
        free_tree(((struct unop_node *)n)->operand);
        break;
    case TAG_CALL:
        free_tree(((struct call_node *)n)->arg);
        break;
    case TAG_ASSIGN:
        free_tree(((struct assign_node *)n)->value);
        break;
    case TAG_VAR:
        return; /* owned by var_list */
    }
    free(n);
}

/* ------------------------------------------------------------------ */
/* Lexer: the calculator reads expressions from text, like real bc.    */
/* ------------------------------------------------------------------ */

#define TK_EOF 0
#define TK_NUM 1
#define TK_NAME 2
#define TK_OP 3
#define TK_LPAREN 4
#define TK_RPAREN 5
#define TK_ASSIGN 6
#define TK_SEMI 7

struct lexer {
    char *src;
    char *pos;
    int kind;
    long num_value;
    char name[32];
    int op;
    int line;
};

static void lex_init(struct lexer *lx, char *text)
{
    lx->src = text;
    lx->pos = text;
    lx->line = 1;
    lx->kind = TK_EOF;
}

static void lex_next(struct lexer *lx)
{
    char *p;

    p = lx->pos;
    while (*p == ' ' || *p == '\t' || *p == '\n') {
        if (*p == '\n')
            lx->line++;
        p++;
    }
    if (*p == '\0') {
        lx->kind = TK_EOF;
        lx->pos = p;
        return;
    }
    if (isdigit(*p)) {
        long v;
        v = 0;
        while (isdigit(*p))
            v = v * 10 + (*p++ - '0');
        lx->kind = TK_NUM;
        lx->num_value = v;
        lx->pos = p;
        return;
    }
    if (isalpha(*p) || *p == '_') {
        int i;
        i = 0;
        while ((isalnum(*p) || *p == '_') && i < 31)
            lx->name[i++] = *p++;
        lx->name[i] = '\0';
        lx->kind = TK_NAME;
        lx->pos = p;
        return;
    }
    switch (*p) {
    case '(':
        lx->kind = TK_LPAREN;
        break;
    case ')':
        lx->kind = TK_RPAREN;
        break;
    case '=':
        lx->kind = TK_ASSIGN;
        break;
    case ';':
        lx->kind = TK_SEMI;
        break;
    default:
        lx->kind = TK_OP;
        lx->op = *p;
        break;
    }
    lx->pos = p + 1;
}

/* ------------------------------------------------------------------ */
/* Recursive-descent parser building the tagged AST.                   */
/*   stmt   := NAME '=' expr | expr                                    */
/*   expr   := term (('+'|'-') term)*                                  */
/*   term   := factor (('*'|'/'|'%') factor)*                          */
/*   factor := '-' factor | NUM | NAME | NAME '(' expr ')' | '(' expr ')' */
/* ------------------------------------------------------------------ */

static struct node *parse_expr(struct lexer *lx);

static struct node *parse_factor(struct lexer *lx)
{
    struct node *n;

    if (lx->kind == TK_OP && lx->op == '-') {
        lex_next(lx);
        return mk_unop('-', parse_factor(lx));
    }
    if (lx->kind == TK_NUM) {
        n = mk_num(lx->num_value);
        lex_next(lx);
        return n;
    }
    if (lx->kind == TK_NAME) {
        char saved[32];
        strcpy(saved, lx->name);
        lex_next(lx);
        if (lx->kind == TK_LPAREN) {
            lex_next(lx);
            n = mk_call(strdup(saved), parse_expr(lx));
            if (lx->kind == TK_RPAREN)
                lex_next(lx);
            else
                ctx_error(&g_interp, "missing )");
            return n;
        }
        return mk_var(saved);
    }
    if (lx->kind == TK_LPAREN) {
        lex_next(lx);
        n = parse_expr(lx);
        if (lx->kind == TK_RPAREN)
            lex_next(lx);
        else
            ctx_error(&g_interp, "missing )");
        return n;
    }
    ctx_error(&g_interp, "unexpected token");
    lex_next(lx);
    return mk_num(0);
}

static struct node *parse_term(struct lexer *lx)
{
    struct node *n;

    n = parse_factor(lx);
    while (lx->kind == TK_OP
           && (lx->op == '*' || lx->op == '/' || lx->op == '%')) {
        int op;
        op = lx->op;
        lex_next(lx);
        n = mk_binop(op, n, parse_factor(lx));
    }
    return n;
}

static struct node *parse_expr(struct lexer *lx)
{
    struct node *n;

    n = parse_term(lx);
    while (lx->kind == TK_OP && (lx->op == '+' || lx->op == '-')) {
        int op;
        op = lx->op;
        lex_next(lx);
        n = mk_binop(op, n, parse_term(lx));
    }
    return n;
}

static struct node *parse_stmt(struct lexer *lx)
{
    struct node *n;

    if (lx->kind == TK_NAME) {
        char saved[32];
        char *after;
        strcpy(saved, lx->name);
        after = lx->pos;
        lex_next(lx);
        if (lx->kind == TK_ASSIGN) {
            lex_next(lx);
            return mk_assign(saved, parse_expr(lx));
        }
        /* Not an assignment: rewind and parse as an expression. */
        lx->pos = after;
        strcpy(lx->name, saved);
        lx->kind = TK_NAME;
        n = parse_expr(lx);
        return n;
    }
    return parse_expr(lx);
}

/* ------------------------------------------------------------------ */
/* Driver: a statement list kept on a work queue, like bc's main loop. */
/* ------------------------------------------------------------------ */

struct stmt_entry {
    struct stmt_entry *next;
    struct node *tree;
    int line;
};

static struct stmt_entry *queue_head;
static struct stmt_entry *queue_tail;

static void enqueue_stmt(struct node *tree, int line)
{
    struct stmt_entry *e;

    e = (struct stmt_entry *)malloc(sizeof(struct stmt_entry));
    e->tree = tree;
    e->line = line;
    e->next = 0;
    if (queue_tail == 0)
        queue_head = e;
    else
        queue_tail->next = e;
    queue_tail = e;
}

static void parse_program(char *text)
{
    struct lexer lx;

    lex_init(&lx, text);
    lex_next(&lx);
    while (lx.kind != TK_EOF) {
        enqueue_stmt(parse_stmt(&lx), lx.line);
        while (lx.kind == TK_SEMI)
            lex_next(&lx);
    }
}

static long run_queue(void)
{
    struct stmt_entry *e;
    struct number result;
    long last;

    last = 0;
    for (e = queue_head; e != 0; e = e->next) {
        g_interp.line_no = e->line;
        eval(e->tree, &result);
        print_number(&g_interp, &result);
        last = num_to_long(&result);
    }
    return last;
}

static void dump_variables(void)
{
    struct var_node *v;

    for (v = var_list; v != 0; v = v->next_var)
        printf("%s = %ld (assigned %d times)\n",
               v->name, num_to_long(&v->value), v->assignments);
}

static char output_buffer[256];

int main(void)
{
    long last;

    g_interp.vars = 0;
    g_interp.prompt = "> ";
    g_interp.outbuf = output_buffer;
    g_interp.outlen = 0;
    g_interp.scale = 20;
    g_interp.ibase = 10;
    g_interp.obase = 10;
    g_interp.interactive = 0;

    parse_program(
        "x = (3 + 4) * 2;"
        "y = sqrt(x) - (-5);"
        "z = x * y + abs(0 - 12);"
        "z % 7;"
    );
    last = run_queue();
    printf("%s", g_interp.outbuf);
    dump_variables();
    printf("last = %ld (nodes=%d evals=%ld errors=%d)\n",
           last, nodes_built, eval_count, g_interp.errors);
    return 0;
}
