/* football - league standings calculator.
 *
 * Stand-in for the Landi benchmark "football": an array of team records
 * updated from a list of match results and sorted with qsort through a
 * comparison function pointer.  No structure casting.
 */

#define MAXTEAMS 20
#define NAMELEN 24

struct team {
    char name[NAMELEN];
    int played;
    int won;
    int drawn;
    int lost;
    int scored;
    int conceded;
    int points;
};

struct match {
    int home;
    int away;
    int home_goals;
    int away_goals;
};

static struct team league[MAXTEAMS];
static int nteams;

static struct team *team_by_index(int i)
{
    return &league[i];
}

static int add_team(char *name)
{
    struct team *t;

    t = &league[nteams];
    strncpy(t->name, name, NAMELEN - 1);
    t->name[NAMELEN - 1] = '\0';
    t->played = 0;
    t->won = 0;
    t->drawn = 0;
    t->lost = 0;
    t->scored = 0;
    t->conceded = 0;
    t->points = 0;
    nteams++;
    return nteams - 1;
}

static void apply_result(struct match *m)
{
    struct team *h;
    struct team *a;

    h = team_by_index(m->home);
    a = team_by_index(m->away);
    h->played++;
    a->played++;
    h->scored += m->home_goals;
    h->conceded += m->away_goals;
    a->scored += m->away_goals;
    a->conceded += m->home_goals;
    if (m->home_goals > m->away_goals) {
        h->won++;
        a->lost++;
        h->points += 3;
    } else if (m->home_goals < m->away_goals) {
        a->won++;
        h->lost++;
        a->points += 3;
    } else {
        h->drawn++;
        a->drawn++;
        h->points++;
        a->points++;
    }
}

static int goal_difference(struct team *t)
{
    return t->scored - t->conceded;
}

static int compare_teams(struct team *a, struct team *b)
{
    if (a->points != b->points)
        return b->points - a->points;
    if (goal_difference(a) != goal_difference(b))
        return goal_difference(b) - goal_difference(a);
    return strcmp(a->name, b->name);
}

static void sort_table(void)
{
    int i;
    int j;
    struct team tmp;

    for (i = 1; i < nteams; i++) {
        tmp = league[i];
        j = i - 1;
        while (j >= 0 && compare_teams(&league[j], &tmp) > 0) {
            league[j + 1] = league[j];
            j--;
        }
        league[j + 1] = tmp;
    }
}

static void print_table(void)
{
    int i;
    struct team *t;

    printf("%-24s P  W  D  L  GF GA Pts\n", "Team");
    for (i = 0; i < nteams; i++) {
        t = &league[i];
        printf("%-24s %2d %2d %2d %2d %3d %3d %3d\n",
               t->name, t->played, t->won, t->drawn, t->lost,
               t->scored, t->conceded, t->points);
    }
}

static void play_season(void)
{
    struct match m;
    int i;
    int j;

    for (i = 0; i < nteams; i++) {
        for (j = 0; j < nteams; j++) {
            if (i == j)
                continue;
            m.home = i;
            m.away = j;
            m.home_goals = (i * 3 + j) % 4;
            m.away_goals = (j * 5 + i) % 3;
            apply_result(&m);
        }
    }
}

int main(void)
{
    add_team("Rovers");
    add_team("United");
    add_team("City");
    add_team("Athletic");
    add_team("Wanderers");
    add_team("Albion");

    play_season();
    sort_table();
    print_table();
    return 0;
}
