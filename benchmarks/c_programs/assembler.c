/* assembler - two-pass assembler for a toy ISA.
 *
 * Stand-in for the Landi benchmark "assembler".  Casting idioms: a
 * generic hash-table whose entries hold a common header and are downcast
 * to symbol or opcode entries, plus an output buffer of encoded words
 * accessed through differently typed views.
 */

#define HASHSIZE 64
#define MAXCODE 256
#define ENT_SYMBOL 1
#define ENT_OPCODE 2

struct entry {
    struct entry *next;
    char *name;
    int kind;
};

struct symbol_entry {
    struct entry hdr;
    int address;
    int defined;
};

struct opcode_entry {
    struct entry hdr;
    int code;
    int operands;
};

struct insn_word {
    unsigned int opcode : 8;
    unsigned int reg : 8;
    unsigned int imm : 16;
};

static struct entry *table[HASHSIZE];
static unsigned int code[MAXCODE];
static int location;
static int errors;

static unsigned int hash_name(char *s)
{
    unsigned int h;

    h = 5381;
    while (*s != '\0') {
        h = h * 33 + (unsigned int)*s;
        s++;
    }
    return h % HASHSIZE;
}

static struct entry *find(char *name)
{
    struct entry *e;

    for (e = table[hash_name(name)]; e != 0; e = e->next) {
        if (strcmp(e->name, name) == 0)
            return e;
    }
    return 0;
}

static struct entry *insert(char *name, int kind, unsigned long size)
{
    struct entry *e;
    unsigned int h;

    e = (struct entry *)malloc(size);
    e->name = strdup(name);
    e->kind = kind;
    h = hash_name(name);
    e->next = table[h];
    table[h] = e;
    return e;
}

static struct symbol_entry *define_symbol(char *name, int addr)
{
    struct entry *e;
    struct symbol_entry *s;

    e = find(name);
    if (e != 0 && e->kind == ENT_SYMBOL) {
        s = (struct symbol_entry *)e;
        if (s->defined)
            errors++;
        s->address = addr;
        s->defined = 1;
        return s;
    }
    s = (struct symbol_entry *)insert(name, ENT_SYMBOL,
                                      sizeof(struct symbol_entry));
    s->address = addr;
    s->defined = 1;
    return s;
}

static struct symbol_entry *reference_symbol(char *name)
{
    struct entry *e;
    struct symbol_entry *s;

    e = find(name);
    if (e != 0 && e->kind == ENT_SYMBOL)
        return (struct symbol_entry *)e;
    s = (struct symbol_entry *)insert(name, ENT_SYMBOL,
                                      sizeof(struct symbol_entry));
    s->address = 0;
    s->defined = 0;
    return s;
}

static void define_opcode(char *name, int codeval, int operands)
{
    struct opcode_entry *o;

    o = (struct opcode_entry *)insert(name, ENT_OPCODE,
                                      sizeof(struct opcode_entry));
    o->code = codeval;
    o->operands = operands;
}

static struct opcode_entry *find_opcode(char *name)
{
    struct entry *e;

    e = find(name);
    if (e != 0 && e->kind == ENT_OPCODE)
        return (struct opcode_entry *)e;
    return 0;
}

static void emit(int opcode, int reg, int imm)
{
    struct insn_word w;
    unsigned int *raw;

    w.opcode = (unsigned int)opcode;
    w.reg = (unsigned int)reg;
    w.imm = (unsigned int)imm;
    raw = (unsigned int *)&w;
    if (location < MAXCODE)
        code[location] = *raw;
    location++;
}

static void assemble_line(char *mnemonic, int reg, char *symref)
{
    struct opcode_entry *op;
    struct symbol_entry *sym;
    int imm;

    op = find_opcode(mnemonic);
    if (op == 0) {
        errors++;
        return;
    }
    imm = 0;
    if (symref != 0) {
        sym = reference_symbol(symref);
        imm = sym->address;
    }
    emit(op->code, reg, imm);
}

static void init_opcodes(void)
{
    define_opcode("load", 1, 2);
    define_opcode("store", 2, 2);
    define_opcode("add", 3, 2);
    define_opcode("jump", 4, 1);
    define_opcode("halt", 5, 0);
}

static int count_undefined(void)
{
    int i;
    int undef;
    struct entry *e;

    undef = 0;
    for (i = 0; i < HASHSIZE; i++) {
        for (e = table[i]; e != 0; e = e->next) {
            if (e->kind == ENT_SYMBOL) {
                struct symbol_entry *s;
                s = (struct symbol_entry *)e;
                if (!s->defined)
                    undef++;
            }
        }
    }
    return undef;
}

/* ------------------------------------------------------------------ */
/* Source-line scanner and two-pass driver: pass 1 collects labels,    */
/* pass 2 encodes, exactly like the Landi assembler's structure.       */
/* ------------------------------------------------------------------ */

struct source_line {
    char label[16];
    char mnemonic[16];
    int reg;
    char operand[16];
    int has_operand;
};

static int parse_line(char *text, struct source_line *out)
{
    char *p;
    int i;

    out->label[0] = '\0';
    out->mnemonic[0] = '\0';
    out->operand[0] = '\0';
    out->reg = 0;
    out->has_operand = 0;

    p = text;
    while (*p == ' ' || *p == '\t')
        p++;
    if (*p == '\0' || *p == ';')
        return 0;
    /* Optional "label:" prefix. */
    if (strchr(p, ':') != 0 && strchr(p, ':') < strchr(p, ' ')) {
        i = 0;
        while (*p != ':' && i < 15)
            out->label[i++] = *p++;
        out->label[i] = '\0';
        p++;
        while (*p == ' ')
            p++;
    }
    i = 0;
    while (*p != '\0' && *p != ' ' && i < 15)
        out->mnemonic[i++] = *p++;
    out->mnemonic[i] = '\0';
    while (*p == ' ')
        p++;
    if (*p == 'r' && isdigit(p[1])) {
        p++;
        out->reg = *p - '0';
        p++;
        if (*p == ',')
            p++;
        while (*p == ' ')
            p++;
    }
    if (*p != '\0') {
        i = 0;
        while (*p != '\0' && *p != ' ' && *p != '\n' && i < 15)
            out->operand[i++] = *p++;
        out->operand[i] = '\0';
        out->has_operand = out->operand[0] != '\0';
    }
    return 1;
}

static char *PROGRAM_TEXT[] = {
    "start:  load r1, data",
    "        add  r1, data",
    "loop:   store r1, data",
    "        jump loop",
    "        halt",
    "data:   halt",
    0,
};

static void pass1(void)
{
    struct source_line line;
    int pc;
    int i;

    pc = 0;
    for (i = 0; PROGRAM_TEXT[i] != 0; i++) {
        if (!parse_line(PROGRAM_TEXT[i], &line))
            continue;
        if (line.label[0] != '\0')
            define_symbol(line.label, pc);
        if (line.mnemonic[0] != '\0')
            pc++;
    }
}

static void pass2(void)
{
    struct source_line line;
    int i;

    location = 0;
    for (i = 0; PROGRAM_TEXT[i] != 0; i++) {
        if (!parse_line(PROGRAM_TEXT[i], &line))
            continue;
        if (line.mnemonic[0] == '\0')
            continue;
        assemble_line(line.mnemonic, line.reg,
                      line.has_operand ? line.operand : 0);
    }
}

static void listing(void)
{
    int i;
    struct insn_word *w;

    for (i = 0; i < location && i < MAXCODE; i++) {
        w = (struct insn_word *)&code[i];
        printf("%04d: op=%u reg=%u imm=%u\n",
               i, (unsigned)w->opcode, (unsigned)w->reg, (unsigned)w->imm);
    }
}

int main(void)
{
    init_opcodes();
    pass1();
    pass2();
    listing();
    printf("%d words, %d errors, %d undefined\n",
           location, errors, count_undefined());
    return errors == 0 ? 0 : 1;
}
