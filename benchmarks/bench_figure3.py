"""Figure 3: program statistics and lookup/resolve instrumentation.

Regenerates the paper's Figure 3 table — for each of the 20 suite
programs: lines of code, number of normalized assignment statements, and
for the "Collapse on Cast" and "Common Initial Sequence" algorithms the
percentage of lookup/resolve calls that involved structures and, of
those, the percentage where the types did not match (i.e. casting was
involved).

Run with ``pytest benchmarks/bench_figure3.py --benchmark-only -s`` to
see the table.
"""

import pytest

from repro.bench.harness import figure3, format_figure3


def test_figure3_table(benchmark):
    rows = benchmark.pedantic(figure3, rounds=1, iterations=1)
    print()
    print(format_figure3(rows))

    # Shape checks mirroring the paper's observations.
    by_name = {r.name: r for r in rows}
    assert len(rows) == 20
    assert sum(1 for r in rows if not r.casting) == 8
    assert sum(1 for r in rows if r.casting) == 12

    # Programs without structure casting show (near-)zero type-mismatch
    # rates; programs with casting show substantial ones.
    nocast_mismatch = [r.mismatch_pct["collapse_on_cast"] for r in rows
                       if not r.casting]
    cast_mismatch = [r.mismatch_pct["collapse_on_cast"] for r in rows
                     if r.casting]
    assert max(nocast_mismatch) < 10.0
    assert sum(m > 25.0 for m in cast_mismatch) >= 8

    # Structures are pervasive: most programs involve structs in a
    # significant fraction of lookup/resolve calls.
    assert sum(r.struct_pct["collapse_on_cast"] > 25.0 for r in rows) >= 14
