"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's exhibits, but each isolates one knob:

1. **Stride refinement** (related work, [WL95]): plain Offsets vs
   StridedOffsets on array-walking code — how much precision the stride
   buys at dereferences of arithmetic-derived pointers.
2. **Assumption 1** (paper §4.2.1): optimistic vs pessimistic pointer
   arithmetic — how many dereferences get flagged as possibly corrupted,
   and what the precision cost of pessimism is.
3. **ABI choice** (the portability argument): Offsets under ILP32 vs
   LP64 — the portable strategies are invariant by construction, the
   offsets strategy is not.
4. **Library summaries**: with the stock summary table vs with the
   default-only fallback, measuring how much dedicated summaries tighten
   results on string/memory-heavy programs.
"""

import pytest

from conftest import cached_program

from repro.clients import deref_stats
from repro.core import (
    CommonInitialSequence,
    Offsets,
    StridedOffsets,
    analyze,
)
from repro.core.engine import Engine
from repro.core.interproc import SummaryRegistry, _default
from repro.ctype.layout import ILP32, LP64, Layout
from repro.suite.registry import SUITE, casting_programs


ARRAY_HEAVY = [p for p in SUITE if p.name in ("less177", "compress", "ul", "gzip")]


class TestStrideAblation:
    @pytest.mark.parametrize("bp", ARRAY_HEAVY, ids=lambda b: b.name)
    def test_stride_never_hurts(self, benchmark, bp):
        program = cached_program(bp.name)

        def once():
            plain = deref_stats(analyze(program, Offsets())).average
            strided = deref_stats(analyze(program, StridedOffsets())).average
            return plain, strided

        plain, strided = benchmark.pedantic(once, rounds=1, iterations=1)
        assert strided <= plain + 1e-9
        print(f"\n{bp.name}: offsets avg={plain:.2f}  strided avg={strided:.2f}")


class TestAssumption1Ablation:
    @pytest.mark.parametrize("bp", casting_programs()[:6], ids=lambda b: b.name)
    def test_pessimistic_mode(self, benchmark, bp):
        program = cached_program(bp.name)

        def once():
            opt = Engine(program, CommonInitialSequence()).solve()
            pes = Engine(
                program, CommonInitialSequence(), assume_valid_pointers=False
            ).solve()
            return (
                deref_stats(opt).average,
                deref_stats(pes).average,
                len(pes.corrupted_deref_sites()),
            )

        opt_avg, pes_avg, flagged = benchmark.pedantic(once, rounds=1, iterations=1)
        print(f"\n{bp.name}: optimistic avg={opt_avg:.2f}  "
              f"pessimistic avg={pes_avg:.2f}  flagged derefs={flagged}")
        # Pessimism trades smeared targets for Unknown: it never *adds*
        # concrete targets, so the average cannot grow much beyond the
        # optimistic one plus the Unknown singletons.
        assert pes_avg <= opt_avg + 1.0


class TestABIAblation:
    @pytest.mark.parametrize("bp", casting_programs(), ids=lambda b: b.name)
    def test_offsets_abi_dependence(self, benchmark, bp):
        program = cached_program(bp.name)

        def once():
            e32 = analyze(program, Offsets(Layout(ILP32))).facts.edge_count()
            e64 = analyze(program, Offsets(Layout(LP64))).facts.edge_count()
            c32 = analyze(
                program, CommonInitialSequence(Layout(ILP32))
            ).facts.edge_count()
            c64 = analyze(
                program, CommonInitialSequence(Layout(LP64))
            ).facts.edge_count()
            return e32, e64, c32, c64

        e32, e64, c32, c64 = benchmark.pedantic(once, rounds=1, iterations=1)
        # The portable strategy's result is identical under both ABIs.
        assert c32 == c64, bp.name
        print(f"\n{bp.name}: offsets edges ilp32={e32} lp64={e64}  "
              f"cis edges={c32} (ABI-invariant)")


class TestSummaryAblation:
    @pytest.mark.parametrize(
        "bp", [p for p in SUITE if p.name in ("anagram", "fixoutput", "ansitape")],
        ids=lambda b: b.name,
    )
    def test_summaries_matter(self, benchmark, bp):
        program = cached_program(bp.name)

        def once():
            engine = Engine(program, CommonInitialSequence())
            with_summaries = deref_stats(engine.solve()).average

            bare = Engine(program, CommonInitialSequence())
            bare.summaries = SummaryRegistry()  # default-only fallback
            without = deref_stats(bare.solve()).average
            return with_summaries, without

        with_s, without = benchmark.pedantic(once, rounds=1, iterations=1)
        print(f"\n{bp.name}: with summaries avg={with_s:.2f}  "
              f"default-only avg={without:.2f}")
        # The default fallback (ret aliases args) is coarser or equal.
        assert with_s <= without + 1e-9
