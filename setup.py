"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments whose setuptools
lacks ``bdist_wheel`` (editable installs then go through ``setup.py
develop``).  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
